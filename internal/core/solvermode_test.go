package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"pdce/internal/core"
	"pdce/internal/dataflow"
	"pdce/internal/faultinject"
	"pdce/internal/obs"
	"pdce/internal/progen"
	"pdce/internal/verify"
)

// TestSolverModesByteIdentical pins down the engine-independence of the
// incremental driver: across a spread of random programs (structured,
// loopy, dense, irreducible) and both modes, the dense, sparse, and
// auto dataflow engines must produce byte-identical output text and
// identical run statistics. 50 seeds x 4 shapes = 200 programs per
// mode; the dense engine is the reference.
func TestSolverModesByteIdentical(t *testing.T) {
	graphs := randomPrograms(t, 50)
	engines := []struct {
		name string
		m    dataflow.SolverMode
	}{
		{"sparse", dataflow.SolveSparse},
		{"auto", dataflow.SolveAuto},
	}
	for _, mode := range []core.Mode{core.ModeDead, core.ModeFaint} {
		for _, g := range graphs {
			ref, refSt, err := core.Transform(g, core.Options{Mode: mode, Solver: dataflow.SolveDense})
			if err != nil {
				t.Fatalf("%s/%v dense: %v", g.Name, mode, err)
			}
			want := ref.Format()
			for _, e := range engines {
				got, st, err := core.Transform(g, core.Options{Mode: mode, Solver: e.m})
				if err != nil {
					t.Fatalf("%s/%v %s: %v", g.Name, mode, e.name, err)
				}
				if text := got.Format(); text != want {
					t.Errorf("%s/%v: %s and dense outputs differ\n%s:\n%s\ndense:\n%s",
						g.Name, mode, e.name, e.name, text, want)
					continue
				}
				if st.Rounds != refSt.Rounds ||
					st.Eliminated != refSt.Eliminated ||
					st.Inserted != refSt.Inserted ||
					st.SinkRemoved != refSt.SinkRemoved ||
					st.PeakStmts != refSt.PeakStmts {
					t.Errorf("%s/%v: %s stats diverge: %+v, dense %+v",
						g.Name, mode, e.name, st, refSt)
				}
			}
		}
	}
}

// TestSolverAutoFallsBackOnIrreducible exercises the auto heuristic's
// reducibility gate on an irreducible corpus: every recorded solve must
// have taken the dense path (the sparse engine's convergence bound
// rests on RPO covering retreating edges, which irreducible graphs
// break), and the output must still match a forced-dense run
// byte-for-byte. Runs under -race in CI, so the corpus stays small.
func TestSolverAutoFallsBackOnIrreducible(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 80, Vars: 6, Irreducible: true})
		col := obs.NewCollector(false)
		got, _, err := core.Transform(g, core.Options{
			Mode:      core.ModeDead,
			Solver:    dataflow.SolveAuto,
			Collector: col,
		})
		if err != nil {
			t.Fatalf("seed %d auto: %v", seed, err)
		}
		for _, m := range []*obs.SolverMetrics{col.DelayMetrics(), col.DeadMetrics()} {
			snap := m.Snapshot()
			if snap.SparseSolves != 0 {
				t.Errorf("seed %d: %d sparse solves on an irreducible graph; auto must fall back to dense", seed, snap.SparseSolves)
			}
			if snap.DenseSolves == 0 && snap.Solves != snap.CacheHits {
				t.Errorf("seed %d: no dense solves recorded (%+v)", seed, snap)
			}
		}
		ref, _, err := core.Transform(g, core.Options{Mode: core.ModeDead, Solver: dataflow.SolveDense})
		if err != nil {
			t.Fatalf("seed %d dense: %v", seed, err)
		}
		if got.Format() != ref.Format() {
			t.Errorf("seed %d: auto and dense outputs differ\nauto:\n%s\ndense:\n%s",
				seed, got.Format(), ref.Format())
		}
	}
}

// TestSparseCancelMidSolveDiscardsPartial injects a stall at the
// solver-visit fault point so a context deadline expires in the middle
// of a forced-sparse solve. The cancelled solve's partial per-bit
// frontiers must be discarded exactly like a cancelled dense solve's
// partial region: the run stops with an interrupt whose surfaced graph
// is a sound phase boundary, never a program built from a half-solved
// system, and the telemetry records the cancellation.
func TestSparseCancelMidSolveDiscardsPartial(t *testing.T) {
	restore := faultinject.Set(func(pt faultinject.Point, _ any) {
		if pt == faultinject.SolverVisit {
			time.Sleep(time.Millisecond)
		}
	})
	defer restore()

	g := progen.Generate(progen.Params{Seed: 5, Stmts: 240, Vars: 6})
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	col := obs.NewCollector(false)
	res, _, err := core.Transform(g, core.Options{
		Mode:      core.ModeDead,
		Solver:    dataflow.SolveSparse,
		Ctx:       ctx,
		Collector: col,
	})

	var ie *core.InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("expected an InterruptError, got %v", err)
	}
	if !core.Partial(err) {
		t.Fatalf("interrupt not classified as partial: %v", err)
	}
	if res == nil {
		t.Fatal("interrupted run surfaced no graph")
	}
	cancelled := col.DelayMetrics().Snapshot().CancelledSolves +
		col.DeadMetrics().Snapshot().CancelledSolves
	if cancelled == 0 {
		t.Error("no cancelled solve recorded; the stall did not interrupt a solve in flight")
	}
	rep := verify.CheckTransformed(g, res, verify.Options{Seeds: 16, Fuel: 512})
	if !rep.OK() {
		t.Errorf("partial graph after mid-sparse-solve cancel is unsound: %s", rep)
	}
}
