package core

import (
	"pdce/internal/analysis"
	"pdce/internal/cfg"
	"pdce/internal/ir"
	"pdce/internal/obs"
)

// ElimStats describes one application of an elimination step.
type ElimStats struct {
	// Removed is the number of assignments eliminated.
	Removed int
	// SolverWork is analysis effort: block visits for the dead
	// analysis, slot updates for the faint analysis.
	SolverWork int
}

// Changed reports whether the elimination altered the program.
func (s ElimStats) Changed() bool { return s.Removed > 0 }

// EliminateDead performs one dead code elimination step (`dce`) on g
// in place: it solves the dead-variable system of Table 1 and then
// processes every basic block, eliminating each assignment whose
// left-hand-side variable is dead immediately after it (Section 5.2,
// "The Elimination Step").
//
// All removals are justified by the single greatest solution computed
// up front; cascading effects (elimination-elimination, Section 4.4)
// are second-order and handled by the driver's re-iteration.
func EliminateDead(g *cfg.Graph) ElimStats {
	return eliminateDeadSolved(g, analysis.DeadVars(g), nil, nil)
}

// eliminateDeadSolved applies the elimination step justified by an
// already-solved dead-variable analysis. changed, when non-nil, is
// called once for every block whose statement list was altered — the
// dirty-set feed of the incremental driver. tr, when non-nil, receives
// one provenance event per removed assignment.
func eliminateDeadSolved(g *cfg.Graph, dead *analysis.DeadResult, changed blockEdit, tr *obs.Trace) ElimStats {
	var st ElimStats
	st.SolverWork = dead.Stats.NodeVisits
	var idx []int
	var ops []int32
	for _, n := range g.Nodes() {
		// An incremental solve restricts the walk: a block whose
		// statements and solution values both held still since the
		// previous elimination pass was emptied of dead assignments
		// by that pass and needs no rescan.
		if len(n.Stmts) == 0 || !dead.NeedsScan(n.ID) {
			continue
		}
		idx = dead.DeadAssignIndices(n, idx[:0])
		if len(idx) == 0 {
			continue
		}
		// idx is in decreasing statement order; walk it from the
		// back to drop statements in one forward compaction. The
		// compaction aliases the old backing array, so the old slice
		// header is captured first — its base pointer and length are
		// what the rewrite notification's consumers validate against.
		old := n.Stmts
		j := len(idx) - 1
		kept := n.Stmts[:0]
		ops = ops[:0]
		for si, s := range n.Stmts {
			if j >= 0 && idx[j] == si {
				j--
				st.Removed++
				if tr != nil {
					if p, ok := ir.PatternOf(s); ok {
						tr.Record(obs.KindEliminate, n.Label, string(p.LHS), p.String())
					}
				}
				continue
			}
			kept = append(kept, s)
			ops = append(ops, int32(si))
		}
		n.Stmts = kept
		if changed != nil {
			changed(n, old, ops)
		}
	}
	return st
}

// EliminateFaint performs one faint code elimination step (`fce`) on g
// in place, eliminating each assignment whose left-hand-side variable
// is faint immediately after it. Faintness subsumes deadness, so every
// dce removal is also an fce removal; fce additionally removes
// mutually-sustaining useless assignments (Figure 9, Figure 12).
func EliminateFaint(g *cfg.Graph) ElimStats {
	return eliminateFaintSolved(g, analysis.FaintVars(g), nil, nil)
}

// eliminateFaintSolved applies the elimination step justified by an
// already-solved faint-variable analysis. The solution must describe
// g's current statement layout (the flat program indexes into it).
func eliminateFaintSolved(g *cfg.Graph, faint *analysis.FaintResult, changed blockEdit, tr *obs.Trace) ElimStats {
	var st ElimStats
	st.SolverWork = faint.SlotUpdates
	var ops []int32
	for _, n := range g.Nodes() {
		if len(n.Stmts) == 0 {
			continue
		}
		removed := 0
		old := n.Stmts
		kept := n.Stmts[:0]
		ops = ops[:0]
		for si, s := range n.Stmts {
			if a, ok := s.(ir.Assign); ok && faint.FaintAfter(n, si, a.LHS) {
				removed++
				if tr != nil {
					if p, pok := ir.PatternOf(s); pok {
						tr.Record(obs.KindEliminate, n.Label, string(p.LHS), p.String())
					}
				}
				continue
			}
			kept = append(kept, s)
			ops = append(ops, int32(si))
		}
		n.Stmts = kept
		if removed > 0 {
			st.Removed += removed
			if changed != nil {
				changed(n, old, ops)
			}
		}
	}
	return st
}
