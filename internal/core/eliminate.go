package core

import (
	"pdce/internal/analysis"
	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// ElimStats describes one application of an elimination step.
type ElimStats struct {
	// Removed is the number of assignments eliminated.
	Removed int
	// SolverWork is analysis effort: block visits for the dead
	// analysis, slot updates for the faint analysis.
	SolverWork int
}

// Changed reports whether the elimination altered the program.
func (s ElimStats) Changed() bool { return s.Removed > 0 }

// EliminateDead performs one dead code elimination step (`dce`) on g
// in place: it solves the dead-variable system of Table 1 and then
// processes every basic block, eliminating each assignment whose
// left-hand-side variable is dead immediately after it (Section 5.2,
// "The Elimination Step").
//
// All removals are justified by the single greatest solution computed
// up front; cascading effects (elimination-elimination, Section 4.4)
// are second-order and handled by the driver's re-iteration.
func EliminateDead(g *cfg.Graph) ElimStats {
	var st ElimStats
	dead := analysis.DeadVars(g)
	st.SolverWork = dead.Stats.NodeVisits
	for _, n := range g.Nodes() {
		if len(n.Stmts) == 0 {
			continue
		}
		xd := dead.InstrXDead(n)
		kept := n.Stmts[:0]
		for si, s := range n.Stmts {
			if a, ok := s.(ir.Assign); ok {
				if vi, known := dead.Vars.Index(a.LHS); known && xd[si].Get(vi) {
					st.Removed++
					continue
				}
			}
			kept = append(kept, s)
		}
		n.Stmts = kept
	}
	return st
}

// EliminateFaint performs one faint code elimination step (`fce`) on g
// in place, eliminating each assignment whose left-hand-side variable
// is faint immediately after it. Faintness subsumes deadness, so every
// dce removal is also an fce removal; fce additionally removes
// mutually-sustaining useless assignments (Figure 9, Figure 12).
func EliminateFaint(g *cfg.Graph) ElimStats {
	var st ElimStats
	faint := analysis.FaintVars(g)
	st.SolverWork = faint.SlotUpdates
	for _, n := range g.Nodes() {
		if len(n.Stmts) == 0 {
			continue
		}
		kept := n.Stmts[:0]
		for si, s := range n.Stmts {
			if a, ok := s.(ir.Assign); ok && faint.FaintAfter(n, si, a.LHS) {
				st.Removed++
				continue
			}
			kept = append(kept, s)
		}
		n.Stmts = kept
	}
	return st
}
