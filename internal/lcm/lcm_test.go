package lcm

import (
	"testing"

	"strings"

	"pdce/internal/analysis"
	"pdce/internal/cfg"
	"pdce/internal/interp"
	"pdce/internal/ir"
	"pdce/internal/parser"
	"pdce/internal/progen"
	"pdce/internal/verify"
)

func optimize(t *testing.T, src string) (*cfg.Graph, *cfg.Graph, Result) {
	t.Helper()
	g := parser.MustParseCFG(src)
	r, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, r.Graph, r
}

// checkSemantics replays executions; LCM must preserve outputs and
// never increase the number of dynamic term evaluations.
func checkSemantics(t *testing.T, orig, opt *cfg.Graph) {
	t.Helper()
	rep := verify.CheckTransformed(orig, opt, verify.Options{Seeds: 48, Fuel: 512, OutputsOnly: true})
	if !rep.OK() {
		t.Fatalf("semantics broken: %s\norig:\n%s\nopt:\n%s", rep, orig, opt)
	}
	for seed := uint64(0); seed < 24; seed++ {
		a := interp.Run(orig, interp.NewSeededOracle(seed), interp.Config{MaxBlockVisits: 512})
		if a.Outcome != interp.Terminated {
			continue
		}
		b := interp.Replay(opt, a.Decisions, interp.Config{MaxBlockVisits: 512})
		if b.Outcome != interp.Terminated {
			t.Fatalf("seed %d: optimized run did not terminate", seed)
		}
		if b.TermEvals > a.TermEvals {
			t.Fatalf("seed %d: term evaluations grew %d -> %d\norig:\n%s\nopt:\n%s",
				seed, a.TermEvals, b.TermEvals, orig, opt)
		}
	}
}

func TestFullRedundancyInDiamond(t *testing.T) {
	// a+b computed on both branch arms and again at the join: the
	// join computation is fully redundant.
	src := `
node a {}
node b { x := a+b }
node c { y := a+b }
node d { z := a+b; out(x+y+z) }
edge s a
edge a b
edge a c
edge b d
edge c d
edge d e
`
	orig, opt, _ := optimize(t, src)
	checkSemantics(t, orig, opt)
	// The join must not evaluate a+b anymore.
	d, _ := opt.NodeByLabel("d")
	for _, s := range d.Stmts {
		if s.String() == "z := a+b" {
			t.Errorf("fully redundant computation survived:\n%s", opt)
		}
	}
}

func TestPartialRedundancyInsertion(t *testing.T) {
	// Classic partial redundancy: a+b available on one branch only;
	// LCM inserts on the other branch and deletes at the join.
	src := `
node a {}
node b { x := a+b }
node c {}
node d { z := a+b; out(x+z) }
edge s a
edge a b
edge a c
edge b d
edge c d
edge d e
`
	orig, opt, r := optimize(t, src)
	checkSemantics(t, orig, opt)
	if r.Inserted == 0 {
		t.Error("no insertion for the partially redundant path")
	}
	// On the b-path, a+b must now be evaluated exactly once.
	a := interp.Replay(orig, []int{0}, interp.Config{})
	b := interp.Replay(opt, []int{0}, interp.Config{})
	if b.TermEvals >= a.TermEvals {
		t.Errorf("b-path term evals %d -> %d, want a reduction", a.TermEvals, b.TermEvals)
	}
}

func TestLoopInvariantHoisting(t *testing.T) {
	g := parser.MustParseSource("p", `
i := n
r := 0
do {
    step := a * b
    r := r + step
    i := i - 1
} while i > 0
out(r)
`)
	r, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	checkSemantics(t, g, r.Graph)
	// With n=100, a*b must be evaluated once, not 100 times.
	input := map[string]int64{"n": 100, "a": 3, "b": 4}
	before := interp.Run(g, interp.NewSeededOracle(1), interp.Config{Input: toVarMap(input), MaxBlockVisits: 2048})
	after := interp.Run(r.Graph, interp.NewSeededOracle(1), interp.Config{Input: toVarMap(input), MaxBlockVisits: 2048})
	if before.Outcome != interp.Terminated || after.Outcome != interp.Terminated {
		t.Fatal("executions did not terminate")
	}
	// before: 100×(a*b) + 100×(r+step) + 100×(i-1) + branches(i>0)
	// after: the a*b term collapses to ~1.
	saved := before.TermEvals - after.TermEvals
	if saved < 90 {
		t.Errorf("hoisting saved only %d term evals (before=%d after=%d)\n%s",
			saved, before.TermEvals, after.TermEvals, r.Graph)
	}
}

func toVarMap(m map[string]int64) map[ir.Var]int64 {
	out := make(map[ir.Var]int64, len(m))
	for k, v := range m {
		out[ir.Var(k)] = v
	}
	return out
}

func TestNoMotionIntoLoop(t *testing.T) {
	// An expression used only after the loop must not be hoisted
	// into it (down-safety would be violated only in the other
	// direction; here we guard against gratuitous insertion).
	g := parser.MustParseSource("p", `
i := n
do {
    i := i - 1
} while i > 0
z := a * b
out(z)
`)
	r, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	checkSemantics(t, g, r.Graph)
	// a*b is evaluated exactly once before and after.
	before := interp.Run(g, interp.NewSeededOracle(1), interp.Config{Input: toVarMap(map[string]int64{"n": 50}), MaxBlockVisits: 2048})
	after := interp.Run(r.Graph, interp.NewSeededOracle(1), interp.Config{Input: toVarMap(map[string]int64{"n": 50}), MaxBlockVisits: 2048})
	if after.TermEvals > before.TermEvals {
		t.Errorf("lcm increased term evals %d -> %d", before.TermEvals, after.TermEvals)
	}
}

func TestNoUnsafeSpeculation(t *testing.T) {
	// a/b only computed on one branch; hoisting above the branch
	// would introduce a fault on the other path. Down-safety must
	// prevent it: the branch-free path never evaluates a/b.
	src := `
node a {}
node b { x := c/d; out(x) }
node c2 { out(0) }
node j {}
edge s a
edge a b
edge a c2
edge b j
edge c2 j
edge j e
`
	orig, opt, _ := optimize(t, src)
	// Take the c2 path with d = 0: must not fault.
	tr := interp.Replay(opt, []int{1}, interp.Config{})
	if tr.Outcome == interp.Faulted {
		t.Fatalf("lcm speculated a faulting division onto a safe path:\n%s", opt)
	}
	checkSemantics(t, orig, opt)
}

func TestRandomProgramsSemantics(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		params := progen.Params{Seed: seed, Stmts: 50, Vars: 5, LoopProb: 0.15, BranchProb: 0.25}
		if seed%5 == 0 {
			params.Irreducible = true
		}
		g := progen.Generate(params)
		r, err := Optimize(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg.MustValidate(r.Graph)
		rep := verify.CheckTransformed(g, r.Graph, verify.Options{Seeds: 24, Fuel: 512, OutputsOnly: true})
		if !rep.OK() {
			t.Errorf("seed %d: %s", seed, rep)
		}
		// Never more term evaluations on any replayed execution.
		for s := uint64(0); s < 12; s++ {
			a := interp.Run(g, interp.NewSeededOracle(s), interp.Config{MaxBlockVisits: 512})
			if a.Outcome != interp.Terminated {
				continue
			}
			b := interp.Replay(r.Graph, a.Decisions, interp.Config{MaxBlockVisits: 512})
			if b.Outcome == interp.Terminated && b.TermEvals > a.TermEvals {
				t.Errorf("seed %d run %d: term evals grew %d -> %d", seed, s, a.TermEvals, b.TermEvals)
			}
		}
	}
}

func TestCollectTerms(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { x := a+b; y := a+b; z := x; w := 5 }
node 2 { out(x+y+z+w) }
edge s 1
edge 1 2
edge 2 e
`)
	tt := CollectTerms(g)
	// Only the compound a+b counts; z := x and w := 5 are trivial.
	if tt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tt.Len())
	}
	if tt.Term(0).Key() != "(a+b)" {
		t.Errorf("term = %q", tt.Term(0).Key())
	}
}

func TestOptimizeIdempotentOnCleanProgram(t *testing.T) {
	// A program with no redundancy: LCM must leave dynamic behaviour
	// unchanged (no insertions at all).
	g := parser.MustParseSource("p", `
x := a + b
out(x)
`)
	r, err := Optimize(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Inserted != 0 {
		t.Errorf("clean program got %d insertions:\n%s", r.Inserted, r.Graph)
	}
	checkSemantics(t, g, r.Graph)
}

// --- busy vs lazy placement ---------------------------------------------

// TestBusyEqualsLazyComputationally: both placements are
// computationally optimal — identical term-evaluation counts on every
// replayed execution (the PLDI'92 result their difference is NOT
// about).
func TestBusyEqualsLazyComputationally(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 50, Vars: 5, LoopProb: 0.15, BranchProb: 0.25})
		lazy, err := OptimizeWith(g, Lazy)
		if err != nil {
			t.Fatal(err)
		}
		busy, err := OptimizeWith(g, Busy)
		if err != nil {
			t.Fatal(err)
		}
		checkSemantics(t, g, busy.Graph)
		for s := uint64(0); s < 16; s++ {
			a := interp.Run(lazy.Graph, interp.NewSeededOracle(s), interp.Config{MaxBlockVisits: 512})
			if a.Outcome != interp.Terminated {
				continue
			}
			b := interp.Replay(busy.Graph, a.Decisions, interp.Config{MaxBlockVisits: 512})
			if b.Outcome != interp.Terminated {
				continue
			}
			if a.TermEvals != b.TermEvals {
				t.Fatalf("seed %d run %d: lazy %d vs busy %d term evals",
					seed, s, a.TermEvals, b.TermEvals)
			}
		}
	}
}

// TestLazyShortensTempLifetimes reproduces the lazy-code-motion
// headline: on a program where the earliest safe point is far above
// the use, busy placement keeps the temporary live across the gap
// while lazy placement defers it — measurably lower liveness pressure.
func TestLazyShortensTempLifetimes(t *testing.T) {
	// a+b is safe to compute at the top (used on every path), but
	// its only uses are far below, past a stretch of unrelated code.
	g := parser.MustParseCFG(`
node top {}
node gap1 { p := 1 }
node gap2 { q := p+1 }
node gap3 { r := q+1 }
node use1 { x := a+b; out(x+r) }
node use2 { y := a+b; out(y+r) }
node join {}
edge s top
edge top gap1
edge gap1 gap2
edge gap2 gap3
edge gap3 use1
edge gap3 use2
edge use1 join
edge use2 join
edge join e
`)
	lazy, err := OptimizeWith(g, Lazy)
	if err != nil {
		t.Fatal(err)
	}
	busy, err := OptimizeWith(g, Busy)
	if err != nil {
		t.Fatal(err)
	}
	checkSemantics(t, g, lazy.Graph)
	checkSemantics(t, g, busy.Graph)
	// The PLDI'92 claim is specifically about the lifetimes of the
	// *introduced temporaries* (whole-program pressure can move
	// either way: an early temp can retire two operands). Count
	// program points where some h.* temporary is live.
	ll := tempLivePoints(t, lazy.Graph)
	lb := tempLivePoints(t, busy.Graph)
	if ll >= lb {
		t.Errorf("lazy temp lifetime %d not below busy %d\nlazy:\n%s\nbusy:\n%s",
			ll, lb, lazy.Graph, busy.Graph)
	}
	// Both placements are computationally optimal *per execution*:
	// every path evaluates a+b exactly once. (Lazy may hold more
	// static copies — one per branch — which is exactly how it wins
	// on lifetimes.)
	for name, r := range map[string]Result{"lazy": lazy, "busy": busy} {
		for _, decision := range [][]int{{0}, {1}} {
			tr := interp.Replay(r.Graph, decision, interp.Config{})
			if tr.Outcome != interp.Terminated {
				t.Fatalf("%s/%v: did not terminate", name, decision)
			}
			evals := 0
			for p, c := range tr.PatternExecs {
				if p.RHS == "(a+b)" {
					evals += c
				}
			}
			if evals != 1 {
				t.Errorf("%s placement evaluated a+b %d times on path %v, want 1",
					name, evals, decision)
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	if Lazy.String() != "lazy" || Busy.String() != "busy" {
		t.Error("strategy names wrong")
	}
}

// tempLivePoints counts (program point, temporary) pairs where an
// lcm-introduced temporary (h.*) is live — the lifetime quantity lazy
// placement minimizes.
func tempLivePoints(t *testing.T, g *cfg.Graph) int {
	t.Helper()
	dead := analysis.DeadVars(g)
	var temps []int
	for vi := 0; vi < dead.Vars.Len(); vi++ {
		if strings.HasPrefix(string(dead.Vars.Var(vi)), "h.") {
			temps = append(temps, vi)
		}
	}
	points := 0
	for _, n := range g.Nodes() {
		xd := dead.InstrXDead(n)
		for si := range n.Stmts {
			for _, vi := range temps {
				if !xd[si].Get(vi) {
					points++
				}
			}
		}
	}
	return points
}
