// Package lcm implements lazy code motion — the partial redundancy
// elimination of Knoop, Rüthing and Steffen (PLDI '92), references
// [22, 23] of the paper — in the edge-based formulation of Drechsler
// and Stadel (reference [12]). Partial dead code elimination is its
// dual (computations are hoisted against the control flow instead of
// sunk with it), and the paper's Table 2 delayability analysis is the
// adaptation of LCM's delayability to assignment sinking; having both
// in one repository makes the duality inspectable and enables the
// combined optimization pipeline of examples/pipeline.
//
// Phases (on a graph with split critical edges):
//
//  1. anticipability (down-safety), backward;
//  2. availability (up-safety), forward;
//  3. EARLIEST on edges — the frontier where a computation first
//     becomes safe and is not already available;
//  4. LATER/LATERIN — delaying insertions from earliest edges down to
//     the latest point before a use (minimal temporary lifetimes);
//  5. INSERT h := t on edges where delaying must stop, rewrite
//     computations x := t to h := t; x := h (or x := h where the
//     inserted/flowing value fully covers the computation).
//
// The isolation refinement of the original LCM paper is realized here
// only as a textual collapse of single-use adjacent pairs; residual
// copies cost a move but never a term evaluation, and dynamic term
// evaluations are the metric the benchmarks report.
package lcm

import (
	"fmt"

	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/dataflow"
	"pdce/internal/ir"
)

// TermTable indexes the motion candidates: non-trivial right-hand-side
// terms of assignments.
type TermTable struct {
	terms []ir.Expr
	vars  []map[ir.Var]bool
	index map[string]int
}

// CollectTerms gathers every motion candidate of g.
func CollectTerms(g *cfg.Graph) *TermTable {
	t := &TermTable{index: make(map[string]int)}
	for _, n := range g.Nodes() {
		for _, s := range n.Stmts {
			if a, ok := s.(ir.Assign); ok && !ir.IsTrivial(a.RHS) {
				t.add(a.RHS)
			}
		}
	}
	return t
}

func (t *TermTable) add(e ir.Expr) int {
	k := e.Key()
	if i, ok := t.index[k]; ok {
		return i
	}
	i := len(t.terms)
	t.terms = append(t.terms, e)
	t.vars = append(t.vars, ir.VarsOf(e))
	t.index[k] = i
	return i
}

// Len returns the number of candidate terms.
func (t *TermTable) Len() int { return len(t.terms) }

// Term returns candidate i.
func (t *TermTable) Term(i int) ir.Expr { return t.terms[i] }

// IndexOf returns the candidate index of e, if e is a candidate.
func (t *TermTable) IndexOf(e ir.Expr) (int, bool) {
	i, ok := t.index[e.Key()]
	return i, ok
}

// locals holds the block-local LCM predicates.
type locals struct {
	terms *TermTable
	// antloc: t computed in n before any modification of its
	// operands. comp: t computed in n with no operand modified
	// afterwards. transp: no operand of t modified in n.
	antloc, comp, transp []*bitvec.Vector
}

func computeLocals(g *cfg.Graph, tt *TermTable) *locals {
	nt := tt.Len()
	l := &locals{
		terms:  tt,
		antloc: make([]*bitvec.Vector, g.NumNodes()),
		comp:   make([]*bitvec.Vector, g.NumNodes()),
		transp: make([]*bitvec.Vector, g.NumNodes()),
	}
	for _, n := range g.Nodes() {
		antloc := bitvec.New(nt)
		comp := bitvec.New(nt)
		transp := bitvec.NewAllOnes(nt)
		modified := bitvec.New(nt)
		for _, s := range n.Stmts {
			a, ok := s.(ir.Assign)
			if !ok {
				continue
			}
			// The RHS evaluates before the LHS is written.
			if ti, isCand := tt.IndexOf(a.RHS); isCand {
				if !modified.Get(ti) {
					antloc.Set(ti)
				}
				comp.Set(ti)
			}
			for ti := 0; ti < nt; ti++ {
				if tt.vars[ti][a.LHS] {
					modified.Set(ti)
					transp.Clear(ti)
					comp.Clear(ti)
				}
			}
		}
		l.antloc[n.ID] = antloc
		l.comp[n.ID] = comp
		l.transp[n.ID] = transp
	}
	return l
}

// --- global analyses --------------------------------------------------

type antProblem struct {
	l    *locals
	bits int
}

func (p *antProblem) Bits() int                     { return p.bits }
func (p *antProblem) Direction() dataflow.Direction { return dataflow.Backward }
func (p *antProblem) Meet() dataflow.Meet           { return dataflow.Intersect }
func (p *antProblem) Boundary() *bitvec.Vector      { return bitvec.New(p.bits) }
func (p *antProblem) Top() *bitvec.Vector           { return bitvec.NewAllOnes(p.bits) }

// ANTIN = ANTLOC + TRANSP·ANTOUT
func (p *antProblem) Transfer(n *cfg.Node, out, in *bitvec.Vector) {
	in.CopyFrom(out)
	in.And(p.l.transp[n.ID])
	in.Or(p.l.antloc[n.ID])
}

type avProblem struct {
	l    *locals
	bits int
}

func (p *avProblem) Bits() int                     { return p.bits }
func (p *avProblem) Direction() dataflow.Direction { return dataflow.Forward }
func (p *avProblem) Meet() dataflow.Meet           { return dataflow.Intersect }
func (p *avProblem) Boundary() *bitvec.Vector      { return bitvec.New(p.bits) }
func (p *avProblem) Top() *bitvec.Vector           { return bitvec.NewAllOnes(p.bits) }

// AVOUT = COMP + AVIN·TRANSP
func (p *avProblem) Transfer(n *cfg.Node, in, out *bitvec.Vector) {
	out.CopyFrom(in)
	out.And(p.l.transp[n.ID])
	out.Or(p.l.comp[n.ID])
}

// Analysis bundles the LCM dataflow solutions for inspection and
// testing. Edge-valued vectors are indexed by the position of the edge
// in Graph.Edges().
type Analysis struct {
	Terms  *TermTable
	locals *locals
	edges  []cfg.Edge

	AntIn, AntOut []*bitvec.Vector // by NodeID
	AvIn, AvOut   []*bitvec.Vector // by NodeID
	Earliest      []*bitvec.Vector // by edge index
	Later         []*bitvec.Vector // by edge index
	LaterIn       []*bitvec.Vector // by NodeID
	Insert        []*bitvec.Vector // by edge index
	Delete        []*bitvec.Vector // by NodeID
}

// Edges returns the edge list the edge-indexed vectors refer to.
func (a *Analysis) Edges() []cfg.Edge { return a.edges }

// Analyze runs the LCM analyses on g (critical edges must be split).
func Analyze(g *cfg.Graph, tt *TermTable) *Analysis {
	l := computeLocals(g, tt)
	nt := tt.Len()

	ant := dataflow.Solve(g, &antProblem{l: l, bits: nt})
	av := dataflow.Solve(g, &avProblem{l: l, bits: nt})

	edges := g.Edges()
	edgeIdx := make(map[[2]cfg.NodeID]int, len(edges))
	for i, e := range edges {
		edgeIdx[[2]cfg.NodeID{e.From.ID, e.To.ID}] = i
	}

	// EARLIEST(m,n) = ANTIN_n · ¬AVOUT_m · (¬TRANSP_m + ¬ANTOUT_m)
	earliest := make([]*bitvec.Vector, len(edges))
	for i, e := range edges {
		v := l.transp[e.From.ID].Copy()
		v.And(ant.Out[e.From.ID])
		v.Not() // ¬TRANSP_m + ¬ANTOUT_m
		if e.From == g.Start {
			// Nothing can be hoisted above the start node; the
			// start edge is always an earliest frontier for
			// whatever is anticipated there.
			v.SetAll()
		}
		v.AndNot(av.Out[e.From.ID])
		v.And(ant.In[e.To.ID])
		earliest[i] = v
	}

	// LATER/LATERIN: greatest fixpoint of
	//   LATERIN_n  = ∏_{(m,n)∈E} LATER(m,n)       (∅ at start)
	//   LATER(m,n) = EARLIEST(m,n) + LATERIN_m·¬ANTLOC_m
	laterIn := make([]*bitvec.Vector, g.NumNodes())
	later := make([]*bitvec.Vector, len(edges))
	for _, n := range g.Nodes() {
		laterIn[n.ID] = bitvec.NewAllOnes(nt)
	}
	laterIn[g.Start.ID] = bitvec.New(nt)
	for i := range edges {
		later[i] = bitvec.NewAllOnes(nt)
	}
	rpo := cfg.ReversePostorder(g)
	for changed := true; changed; {
		changed = false
		for _, n := range rpo {
			for _, m := range n.Succs() {
				i := edgeIdx[[2]cfg.NodeID{n.ID, m.ID}]
				v := laterIn[n.ID].Copy()
				v.AndNot(l.antloc[n.ID])
				v.Or(earliest[i])
				if !v.Equal(later[i]) {
					later[i].CopyFrom(v)
					changed = true
				}
			}
			if n == g.Start {
				continue
			}
			v := bitvec.NewAllOnes(nt)
			for _, m := range n.Preds() {
				i := edgeIdx[[2]cfg.NodeID{m.ID, n.ID}]
				v.And(later[i])
			}
			if !v.Equal(laterIn[n.ID]) {
				laterIn[n.ID].CopyFrom(v)
				changed = true
			}
		}
	}

	// INSERT(m,n) = LATER(m,n)·¬LATERIN_n ; DELETE_n = ANTLOC_n·¬LATERIN_n
	insert := make([]*bitvec.Vector, len(edges))
	for i, e := range edges {
		v := later[i].Copy()
		v.AndNot(laterIn[e.To.ID])
		insert[i] = v
	}
	del := make([]*bitvec.Vector, g.NumNodes())
	for _, n := range g.Nodes() {
		v := l.antloc[n.ID].Copy()
		v.AndNot(laterIn[n.ID])
		del[n.ID] = v
	}

	return &Analysis{
		Terms: tt, locals: l, edges: edges,
		AntIn: ant.In, AntOut: ant.Out,
		AvIn: av.In, AvOut: av.Out,
		Earliest: earliest, Later: later, LaterIn: laterIn,
		Insert: insert, Delete: del,
	}
}

// Strategy selects the insertion placement.
type Strategy int

const (
	// Lazy delays insertions from the earliest safe points to the
	// latest (LATER/LATERIN) — minimal temporary lifetimes at equal
	// computational optimality. This is lazy code motion proper.
	Lazy Strategy = iota
	// Busy inserts at the earliest safe points (busy code motion,
	// the as-early-as-possible placement of Morel/Renvoise lineage
	// that the LCM paper improves on): computationally equivalent,
	// but temporaries live longer. Kept as the comparison point for
	// the lifetimes experiment.
	Busy
)

func (st Strategy) String() string {
	if st == Busy {
		return "busy"
	}
	return "lazy"
}

// Result describes an applied LCM transformation.
type Result struct {
	Graph *cfg.Graph
	// TempFor maps candidate term index to its temporary variable.
	TempFor []ir.Var
	// Inserted counts h := t edge insertions; Deleted counts
	// computations rewritten to a plain temporary read x := h;
	// Rewritten counts computations expanded to h := t; x := h.
	Inserted, Deleted, Rewritten int
}

// Optimize applies lazy code motion to a copy of g and returns the
// transformed program. Critical edges are split first; synthetic nodes
// left empty are removed again.
func Optimize(g *cfg.Graph) (Result, error) {
	return OptimizeWith(g, Lazy)
}

// OptimizeWith is Optimize with an explicit placement strategy.
func OptimizeWith(g *cfg.Graph, strat Strategy) (Result, error) {
	if errs := cfg.Validate(g); len(errs) > 0 {
		return Result{}, fmt.Errorf("lcm: invalid input: %s", errs[0])
	}
	out := g.Clone()
	cfg.SplitCriticalEdges(out)
	tt := CollectTerms(out)
	an := Analyze(out, tt)
	if strat == Busy {
		// Busy code motion: insert at the earliest safe edges and
		// retire every down-safe first computation. LATERIN under
		// this placement is "insertion strictly above": delete
		// everything ANTLOC (each such computation is covered by
		// an earliest insertion on every incoming path).
		for i := range an.Insert {
			an.Insert[i] = an.Earliest[i].Copy()
		}
		for _, n := range out.Nodes() {
			an.Delete[n.ID] = an.locals.antloc[n.ID].Copy()
		}
	}

	// Temporary names must be fresh with respect to the whole
	// program — including temporaries of earlier LCM applications
	// (pipelines iterate this pass).
	taken := out.CollectVars()
	res := Result{Graph: out, TempFor: make([]ir.Var, tt.Len())}
	next := 0
	for ti := range res.TempFor {
		for {
			cand := ir.Var(fmt.Sprintf("h.%d", next))
			next++
			if _, used := taken.Index(cand); !used {
				res.TempFor[ti] = cand
				break
			}
		}
	}

	// Rewrite computations. The first computation of t in a block
	// with DELETE becomes x := h; every other computation becomes
	// h := t; x := h so that h is defined on every path that later
	// reuses it.
	for _, n := range out.Nodes() {
		if len(n.Stmts) == 0 {
			continue
		}
		del := an.Delete[n.ID]
		firstSeen := make(map[int]bool)
		killedBefore := bitvec.New(tt.Len())
		var stmts []ir.Stmt
		for _, s := range n.Stmts {
			a, ok := s.(ir.Assign)
			if !ok {
				stmts = append(stmts, s)
				continue
			}
			ti, isCand := tt.IndexOf(a.RHS)
			if isCand {
				h := res.TempFor[ti]
				isAntloc := !firstSeen[ti] && !killedBefore.Get(ti)
				firstSeen[ti] = true
				switch {
				case isAntloc && del.Get(ti):
					stmts = append(stmts, ir.Assign{LHS: a.LHS, RHS: ir.V(h)})
					res.Deleted++
				default:
					stmts = append(stmts,
						ir.Assign{LHS: h, RHS: a.RHS},
						ir.Assign{LHS: a.LHS, RHS: ir.V(h)})
					res.Rewritten++
				}
			} else {
				stmts = append(stmts, s)
			}
			for t := 0; t < tt.Len(); t++ {
				if tt.vars[t][a.LHS] {
					killedBefore.Set(t)
				}
			}
		}
		n.Stmts = stmts
	}

	// Materialize edge insertions. With critical edges split, every
	// insertion edge has a single-successor source or a
	// single-predecessor target; the one exception is an unsplit
	// edge out of the (always empty) start node, which we split on
	// demand.
	for i, e := range an.Edges() {
		ins := an.Insert[i]
		if ins.IsZero() {
			continue
		}
		var defs []ir.Stmt
		ins.ForEach(func(ti int) {
			defs = append(defs, ir.Assign{LHS: res.TempFor[ti], RHS: tt.Term(ti)})
			res.Inserted++
		})
		target := insertionPoint(out, e)
		if target.atExit {
			target.node.Stmts = append(target.node.Stmts, defs...)
		} else {
			target.node.Stmts = append(defs, target.node.Stmts...)
		}
	}

	collapseAdjacentTemps(out, res.TempFor)
	cfg.RemoveEmptySynthetic(out)
	if errs := cfg.Validate(out); len(errs) > 0 {
		return res, fmt.Errorf("lcm: produced invalid graph: %s", errs[0])
	}
	return res, nil
}

type placement struct {
	node   *cfg.Node
	atExit bool
}

// insertionPoint decides where code inserted "on" edge e lives. May
// split the edge with a fresh synthetic node when neither endpoint can
// host the code alone.
func insertionPoint(g *cfg.Graph, e cfg.Edge) placement {
	from, to := e.From, e.To
	// A single-successor, non-start source hosts the code at its
	// exit — unless it ends in a branch (single-successor blocks
	// never do).
	if from != g.Start && len(from.Succs()) == 1 {
		return placement{node: from, atExit: true}
	}
	if to != g.End && len(to.Preds()) == 1 {
		return placement{node: to, atExit: false}
	}
	// Remaining case: edge out of the start node into a join (never
	// critical, hence never pre-split), or into the end node. Split
	// it now.
	label := fmt.Sprintf("L%s,%s", from.Label, to.Label)
	for k := 2; ; k++ {
		if _, taken := g.NodeByLabel(label); !taken {
			break
		}
		label = fmt.Sprintf("L%s,%s#%d", from.Label, to.Label, k)
	}
	mid := g.AddNode(label)
	mid.Synthetic = true
	g.SplitEdgeWith(from, to, mid)
	return placement{node: mid, atExit: false}
}

// collapseAdjacentTemps undoes the textual h := t; x := h pattern when
// h has no other use in the program — the only isolation case that
// shows up at block granularity.
func collapseAdjacentTemps(g *cfg.Graph, temps []ir.Var) {
	isTemp := make(map[ir.Var]bool, len(temps))
	for _, h := range temps {
		isTemp[h] = true
	}
	useCount := make(map[ir.Var]int)
	for _, n := range g.Nodes() {
		for _, s := range n.Stmts {
			ir.Uses(s, func(v ir.Var) {
				if isTemp[v] {
					useCount[v]++
				}
			})
		}
	}
	for _, n := range g.Nodes() {
		for si := 0; si+1 < len(n.Stmts); si++ {
			def, ok := n.Stmts[si].(ir.Assign)
			if !ok || !isTemp[def.LHS] || useCount[def.LHS] != 1 {
				continue
			}
			use, ok := n.Stmts[si+1].(ir.Assign)
			if !ok {
				continue
			}
			if ref, isRef := use.RHS.(ir.VarRef); isRef && ref.Name == def.LHS {
				n.Stmts[si+1] = ir.Assign{LHS: use.LHS, RHS: def.RHS}
				n.Stmts = append(n.Stmts[:si], n.Stmts[si+1:]...)
				si--
			}
		}
	}
}
