package dataflow

import (
	"fmt"
	"math/rand"
	"testing"

	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/parser"
	"pdce/internal/progen"
)

// gkProblem is a randomized gen/kill problem in the exact shape the
// sparse engine handles: intersect meet, all-ones top, natural
// boundary. Both directions.
type gkProblem struct {
	dir       Direction
	bits      int
	gen, kill []*bitvec.Vector // by NodeID
}

func (p *gkProblem) Bits() int            { return p.bits }
func (p *gkProblem) Direction() Direction { return p.dir }
func (p *gkProblem) Meet() Meet           { return Intersect }
func (p *gkProblem) Boundary() *bitvec.Vector {
	if p.dir == Forward {
		return bitvec.New(p.bits)
	}
	return bitvec.NewAllOnes(p.bits)
}
func (p *gkProblem) Top() *bitvec.Vector { return bitvec.NewAllOnes(p.bits) }
func (p *gkProblem) Transfer(n *cfg.Node, in, out *bitvec.Vector) {
	out.CopyFrom(in)
	out.AndNot(p.kill[n.ID])
	out.Or(p.gen[n.ID])
}
func (p *gkProblem) GenKill(n *cfg.Node) (gen, kill *bitvec.Vector) {
	return p.gen[n.ID], p.kill[n.ID]
}

// randomGK builds a gkProblem with the given gen/kill site densities.
func randomGK(g *cfg.Graph, rng *rand.Rand, dir Direction, bits int, genProb, killProb float64) *gkProblem {
	p := &gkProblem{
		dir:  dir,
		bits: bits,
		gen:  make([]*bitvec.Vector, g.NumNodes()),
		kill: make([]*bitvec.Vector, g.NumNodes()),
	}
	for _, n := range g.Nodes() {
		p.gen[n.ID] = bitvec.New(bits)
		p.kill[n.ID] = bitvec.New(bits)
		for b := 0; b < bits; b++ {
			if rng.Float64() < genProb {
				p.gen[n.ID].Set(b)
			}
			if rng.Float64() < killProb {
				p.kill[n.ID].Set(b)
			}
		}
	}
	return p
}

// cloneGK gives each solver its own problem instance so in-place
// mutations during incremental tests stay in sync by construction.
func cloneGK(p *gkProblem) *gkProblem {
	q := &gkProblem{dir: p.dir, bits: p.bits}
	for i := range p.gen {
		q.gen = append(q.gen, p.gen[i].Copy())
		q.kill = append(q.kill, p.kill[i].Copy())
	}
	return q
}

func sameSolution(t *testing.T, tag string, g *cfg.Graph, a, b *Result) {
	t.Helper()
	for _, n := range g.Nodes() {
		if !a.In[n.ID].Equal(b.In[n.ID]) {
			t.Fatalf("%s: In(%s) differs:\n dense  %s\n sparse %s", tag, n.Label, a.In[n.ID], b.In[n.ID])
		}
		if !a.Out[n.ID].Equal(b.Out[n.ID]) {
			t.Fatalf("%s: Out(%s) differs:\n dense  %s\n sparse %s", tag, n.Label, a.Out[n.ID], b.Out[n.ID])
		}
	}
}

// TestSparseMatchesDenseRandom compares the two engines bit for bit on
// random graphs — structured and irreducible — in both directions and
// at several gen/kill densities. The sparse engine must be exact, not
// approximate, on every shape (it is only the Auto HEURISTIC that
// avoids irreducible graphs, not a correctness requirement).
func TestSparseMatchesDenseRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		for _, irr := range []bool{false, true} {
			g := progen.Generate(progen.Params{Seed: seed, Stmts: 50, Irreducible: irr})
			rng := rand.New(rand.NewSource(seed * 977))
			for _, dir := range []Direction{Forward, Backward} {
				for _, density := range []struct{ gen, kill float64 }{
					{0.02, 0.05},
					{0.15, 0.25},
					{0.6, 0.6},
				} {
					p := randomGK(g, rng, dir, 130, density.gen, density.kill)

					dense := NewSolver(g, p)
					dense.SetMode(SolveDense)
					dres := dense.Full()
					if dres.Stats.Sparse {
						t.Fatal("forced dense ran sparse")
					}

					sparse := NewSolver(g, p)
					sparse.SetMode(SolveSparse)
					sres := sparse.Full()
					if !sres.Stats.Sparse {
						t.Fatal("forced sparse fell back to dense on a qualifying problem")
					}

					tag := fmt.Sprintf("seed=%d irr=%v dir=%v gen=%.2f", seed, irr, dir, density.gen)
					sameSolution(t, tag, g, dres, sres)
				}
			}
		}
	}
}

// TestSparseMatchesDenseIncremental runs both engines through a
// sequence of gen/kill mutations and Resolve calls, checking that the
// sparse full re-solve and the dense incremental region re-solve land
// on the same fixpoint every step.
func TestSparseMatchesDenseIncremental(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 60, Vars: 6})
		rng := rand.New(rand.NewSource(seed + 5000))
		pd := randomGK(g, rng, Backward, 96, 0.05, 0.1)
		ps := cloneGK(pd)

		dense := NewSolver(g, pd)
		dense.SetMode(SolveDense)
		sparse := NewSolver(g, ps)
		sparse.SetMode(SolveSparse)
		sameSolution(t, "initial", g, dense.Full(), sparse.Full())

		nodes := g.Nodes()
		for step := 0; step < 15; step++ {
			var dirty []cfg.NodeID
			for k := 0; k < 1+rng.Intn(3); k++ {
				n := nodes[rng.Intn(len(nodes))]
				b := rng.Intn(96)
				gv, kv := rng.Intn(2) == 0, rng.Intn(2) == 0
				for _, p := range []*gkProblem{pd, ps} {
					p.gen[n.ID].Assign(b, gv)
					p.kill[n.ID].Assign(b, kv)
				}
				dirty = append(dirty, n.ID)
			}
			dres := dense.Resolve(dirty)
			sres := sparse.Resolve(dirty)
			sameSolution(t, fmt.Sprintf("seed=%d step=%d", seed, step), g, dres, sres)
		}
	}
}

// TestAutoModeSelection pins the Auto policy: irreducible graphs and
// non-gen/kill problems run dense; a wide, sparsely seeded problem on
// a reducible graph runs sparse.
func TestAutoModeSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	red := progen.Generate(progen.Params{Seed: 1, Stmts: 60})
	p := randomGK(red, rng, Forward, 256, 0.01, 0.05)
	s := NewSolver(red, p)
	if res := s.Full(); !res.Stats.Sparse {
		t.Error("auto did not pick sparse for a wide, sparsely seeded reducible problem")
	}

	irr := progen.Generate(progen.Params{Seed: 2, Stmts: 60, Irreducible: true})
	if !cfg.Reducible(irr) {
		pi := randomGK(irr, rng, Forward, 256, 0.01, 0.05)
		si := NewSolver(irr, pi)
		if res := si.Full(); res.Stats.Sparse {
			t.Error("auto picked sparse on an irreducible graph")
		}
	}

	// Dense universes flood nearly every bit everywhere; auto must
	// stay dense there.
	pdense := randomGK(red, rng, Forward, 256, 0.9, 0.1)
	sd := NewSolver(red, pdense)
	if res := sd.Full(); res.Stats.Sparse {
		t.Error("auto picked sparse for a saturated seed set")
	}
}

// TestSparseFallbackOnUnqualifiedProblem forces SolveSparse on a
// problem outside the sparse shape (union meet, no gen/kill form) and
// checks the solver quietly runs the dense engine instead.
func TestSparseFallbackOnUnqualifiedProblem(t *testing.T) {
	g := parser.MustParseCFG(`
node a {}
node b {}
edge s a
edge a b
edge b e
`)
	s := NewSolver(g, &reachProblem{genLabel: "a"})
	s.SetMode(SolveSparse)
	res := s.Full()
	if res.Stats.Sparse {
		t.Fatal("sparse engine ran on a non-gen/kill union problem")
	}
	a, _ := g.NodeByLabel("a")
	if !res.Out[a.ID].Get(1) {
		t.Error("fallback dense solve produced a wrong solution")
	}
}

// TestSparseCancellationDiscards checks the cancellation contract on
// the sparse path: a cancelled solve is marked partial, is not kept as
// a baseline, and the next solve runs in full and lands on the exact
// fixpoint.
func TestSparseCancellationDiscards(t *testing.T) {
	g := progen.Generate(progen.Params{Seed: 3, Stmts: 80})
	rng := rand.New(rand.NewSource(3))
	p := randomGK(g, rng, Forward, 128, 0.1, 0.2)

	s := NewSolver(g, p)
	s.SetMode(SolveSparse)
	cancelled := true
	s.SetCancel(func() bool { return cancelled })
	res := s.Full()
	if !res.Stats.Cancelled {
		t.Fatal("cancel hook ignored by sparse solve")
	}

	// Un-cancel: the next solve must be full (not incremental reuse
	// of the partial result) and must match a fresh dense solve.
	cancelled = false
	res = s.Resolve(nil)
	if res.Stats.Cancelled {
		t.Fatal("re-solve still cancelled")
	}
	ref := NewSolver(g, p)
	ref.SetMode(SolveDense)
	sameSolution(t, "after cancel", g, ref.Full(), res)
}

// TestPriorityWorklistOrder pins the dense engine's pass accounting: a
// straight-line graph converges in one sweep (Passes == 1), and a loop
// needs at most one extra confirmation sweep.
func TestPriorityWorklistOrder(t *testing.T) {
	line := parser.MustParseCFG(`
node a {}
node b {}
node c {}
edge s a
edge a b
edge b c
edge c e
`)
	rng := rand.New(rand.NewSource(11))
	p := randomGK(line, rng, Forward, 64, 0.2, 0.2)
	s := NewSolver(line, p)
	s.SetMode(SolveDense)
	res := s.Full()
	if res.Stats.Passes != 1 {
		t.Errorf("straight-line convergence took %d passes, want 1", res.Stats.Passes)
	}
	if res.Stats.MaxWorklistDepth != line.NumNodes() {
		t.Errorf("max depth = %d, want %d (full seed)", res.Stats.MaxWorklistDepth, line.NumNodes())
	}

	loop := parser.MustParseCFG(`
node pre {}
node h {}
node b {}
node x {}
edge s pre
edge pre h
edge h b
edge b h
edge h x
edge x e
`)
	pl := randomGK(loop, rng, Forward, 64, 0.2, 0.2)
	sl := NewSolver(loop, pl)
	sl.SetMode(SolveDense)
	resl := sl.Full()
	if resl.Stats.Passes < 1 || resl.Stats.Passes > 3 {
		t.Errorf("single natural loop took %d passes", resl.Stats.Passes)
	}
}
