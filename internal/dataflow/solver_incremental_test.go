package dataflow

import (
	"fmt"
	"testing"

	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/parser"
)

// mutProblem is an intersect problem whose transfer is driven by
// per-label kill/use rules the test mutates between solves — a stand-in
// for block contents changing under the incremental driver.
type mutProblem struct {
	dir  Direction
	bits int
	set  map[string]uint // labels whose transfer sets these bits
	clr  map[string]uint // labels whose transfer clears these bits
}

func (p *mutProblem) Bits() int            { return p.bits }
func (p *mutProblem) Direction() Direction { return p.dir }
func (p *mutProblem) Meet() Meet           { return Intersect }
func (p *mutProblem) Boundary() *bitvec.Vector {
	return bitvec.NewAllOnes(p.bits)
}
func (p *mutProblem) Top() *bitvec.Vector { return bitvec.NewAllOnes(p.bits) }
func (p *mutProblem) Transfer(n *cfg.Node, src, dst *bitvec.Vector) {
	dst.CopyFrom(src)
	for b := 0; b < p.bits; b++ {
		if p.set[n.Label]&(1<<b) != 0 {
			dst.Set(b)
		}
		if p.clr[n.Label]&(1<<b) != 0 {
			dst.Clear(b)
		}
	}
}

func incrementalTestGraph(t *testing.T) *cfg.Graph {
	t.Helper()
	// Diamond into a loop into a second diamond — joins, a cycle,
	// and a straight tail.
	return parser.MustParseCFG(`
node a {}
node b {}
node c {}
node d {}
node l1 {}
node l2 {}
node f {}
node g1 {}
node g2 {}
node h {}
edge s a
edge a b
edge a c
edge b d
edge c d
edge d l1
edge l1 l2
edge l2 l1
edge l2 f
edge f g1
edge f g2
edge g1 h
edge g2 h
edge h e
`)
}

// requireSameSolution compares two results over all nodes.
func requireSameSolution(t *testing.T, g *cfg.Graph, got, want *Result, ctx string) {
	t.Helper()
	for _, n := range g.Nodes() {
		if !got.In[n.ID].Equal(want.In[n.ID]) {
			t.Fatalf("%s: In[%s] = %s, want %s", ctx, n.Label, got.In[n.ID], want.In[n.ID])
		}
		if !got.Out[n.ID].Equal(want.Out[n.ID]) {
			t.Fatalf("%s: Out[%s] = %s, want %s", ctx, n.Label, got.Out[n.ID], want.Out[n.ID])
		}
	}
}

// TestResolveMatchesFullSolve mutates every node's transfer rules in
// turn and checks that re-seeding only the dirty node's affected region
// reproduces the from-scratch greatest fixpoint exactly, in both
// directions.
func TestResolveMatchesFullSolve(t *testing.T) {
	for _, dir := range []Direction{Backward, Forward} {
		name := "backward"
		if dir == Forward {
			name = "forward"
		}
		t.Run(name, func(t *testing.T) {
			g := incrementalTestGraph(t)
			prob := &mutProblem{
				dir:  dir,
				bits: 4,
				set:  map[string]uint{"b": 0b0001, "l1": 0b0100},
				clr:  map[string]uint{"d": 0b0010, "g2": 0b1000},
			}
			inc := NewSolver(g, prob)
			inc.Full()

			mutations := []struct {
				label    string
				set, clr uint
			}{
				{"c", 0b1000, 0},
				{"l2", 0, 0b0101},
				{"a", 0b0010, 0},
				{"h", 0, 0b0001},
				{"l1", 0, 0}, // revert l1 to identity
				{"g1", 0b0110, 0b1000},
			}
			for _, m := range mutations {
				prob.set[m.label] = m.set
				prob.clr[m.label] = m.clr
				var dirty []cfg.NodeID
				n, ok := g.NodeByLabel(m.label)
				if !ok {
					t.Fatalf("no node %q", m.label)
				}
				dirty = append(dirty, n.ID)

				got := inc.Resolve(dirty)
				want := Solve(g, prob)
				requireSameSolution(t, g, got, want, fmt.Sprintf("after mutating %s", m.label))
			}
		})
	}
}

// TestResolveEmptyDirtyIsCached checks that a resolve with no dirty
// nodes returns the prior solution without visiting anything.
func TestResolveEmptyDirtyIsCached(t *testing.T) {
	g := incrementalTestGraph(t)
	prob := &mutProblem{dir: Backward, bits: 3, set: map[string]uint{"d": 1}, clr: map[string]uint{"f": 2}}
	s := NewSolver(g, prob)
	full := s.Full()
	visits := full.Stats.NodeVisits

	again := s.Resolve(nil)
	if again.Stats.NodeVisits != 0 || again.Stats.Seeded != 0 {
		t.Errorf("empty resolve did work: %+v", again.Stats)
	}
	want := Solve(g, prob)
	requireSameSolution(t, g, again, want, "cached resolve")
	if visits == 0 {
		t.Error("full solve reported no node visits")
	}
}

// TestResolveOnUnsolvedFallsBackToFull checks the first Resolve call
// solves in full even when handed a partial dirty set.
func TestResolveOnUnsolvedFallsBackToFull(t *testing.T) {
	g := incrementalTestGraph(t)
	prob := &mutProblem{dir: Forward, bits: 2, set: map[string]uint{"b": 1}, clr: map[string]uint{"l2": 2}}
	s := NewSolver(g, prob)
	n, _ := g.NodeByLabel("h")
	got := s.Resolve([]cfg.NodeID{n.ID})
	want := Solve(g, prob)
	requireSameSolution(t, g, got, want, "first resolve")
}

// TestResolveRepeatedMutationsConverge hammers one solver with a long
// mutation sequence touching several nodes per step, comparing against
// fresh solves throughout — the access pattern of the driver's rounds.
func TestResolveRepeatedMutationsConverge(t *testing.T) {
	g := incrementalTestGraph(t)
	labels := []string{"a", "b", "c", "d", "l1", "l2", "f", "g1", "g2", "h"}
	prob := &mutProblem{dir: Backward, bits: 6, set: map[string]uint{}, clr: map[string]uint{}}
	s := NewSolver(g, prob)
	s.Full()

	rng := uint64(1)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	for step := 0; step < 60; step++ {
		k := 1 + int(next(3))
		var dirty []cfg.NodeID
		for i := 0; i < k; i++ {
			label := labels[next(uint64(len(labels)))]
			prob.set[label] = uint(next(64))
			prob.clr[label] = uint(next(64)) &^ prob.set[label]
			n, _ := g.NodeByLabel(label)
			dirty = append(dirty, n.ID)
		}
		got := s.Resolve(dirty)
		want := Solve(g, prob)
		requireSameSolution(t, g, got, want, fmt.Sprintf("step %d", step))
	}
}
