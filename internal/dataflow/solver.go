// Package dataflow provides the two solving regimes the paper's
// analyses need:
//
//   - a block-level worklist solver for monotone vector problems
//     (dead variables, delayability — the bit-vector analyses of
//     Tables 1 and 2), and
//   - an instruction-level flattening of a flow graph (FlatProgram),
//     on which the slotwise worklist algorithm of Dhamdhere, Rosen and
//     Zadeck solves the faint-variable problem, which is not a
//     bit-vector problem (Section 5.2, Section 6.1.2).
//
// All paper analyses take greatest fixpoints: solvers initialize to the
// problem's top value and iterate downwards. Solvers record iteration
// statistics so cmd/benchpaper can report empirical convergence
// behaviour against Section 6's estimates.
//
// Beyond the one-shot Solve, the Solver type supports the fixpoint
// driver's round structure: it owns its In/Out storage (slab-allocated,
// reused across solves) and can re-solve incrementally after a known
// set of blocks changed, re-seeding from the previous solution instead
// of re-initializing the whole graph to top.
//
// Two execution engines back the same equations. The dense engine is a
// priority worklist over the whole graph: nodes drain in solve order
// (reverse postorder for forward problems, postorder for backward
// ones), so each sweep is a Hecht/Ullman round-robin pass and the
// number of wraparounds is the real convergence pass count. The sparse
// engine (sparse.go) solves gen/kill problems bit by bit, visiting only
// the region a bit's gen sites can influence; it is exact and usually
// far cheaper when gen sites are scarce. SolverMode selects between
// them; the default Auto mode uses a density and reducibility
// heuristic.
package dataflow

import (
	"math/bits"

	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/faultinject"
	"pdce/internal/obs"
)

// Direction of a dataflow problem.
type Direction int

// Problem directions.
const (
	Forward Direction = iota
	Backward
)

// Meet is the confluence operator combining values flowing into a
// node.
type Meet int

// Confluence operators. Intersect realizes "on all paths" (product in
// the paper's equation systems), Union realizes "on some path".
const (
	Intersect Meet = iota
	Union
)

// VectorProblem describes a monotone block-level vector problem.
//
// For Forward problems the solver computes
//
//	In(n)  = meet over p ∈ pred(n) of Out(p)      (Boundary at Start)
//	Out(n) = Transfer(n, In(n))
//
// and dually for Backward problems (In/Out swap roles: Out(n) is met
// over successors, In(n) = Transfer over the block).
type VectorProblem interface {
	// Bits is the width of the vectors (size of the analysis
	// universe).
	Bits() int

	Direction() Direction
	Meet() Meet

	// Boundary is the fixed value at the graph boundary: the entry
	// value of Start for forward problems, the exit value of End
	// for backward problems.
	Boundary() *bitvec.Vector

	// Top is the initial optimistic value for all other nodes. The
	// paper's analyses compute greatest solutions, so Top is
	// all-ones for them.
	Top() *bitvec.Vector

	// Transfer applies the block's transfer function to the value
	// at its input side (entry for forward, exit for backward),
	// writing the result into out. in must not be modified.
	Transfer(n *cfg.Node, in, out *bitvec.Vector)
}

// GenKillProblem is a VectorProblem whose transfer function has the
// canonical gen/kill form
//
//	out = (in AND NOT kill) OR gen
//
// (Section 3's bit-vector equations all do). Problems that implement
// it unlock two fast paths: the dense engine fuses the transfer into a
// single word-parallel AndNotOrInto pass, and the sparse engine can
// solve per bit from the gen/kill sites alone. The returned vectors
// are read-only to the solver and must stay valid until the next
// solve; they may be rebuilt between solves (the solver re-reads them
// each time).
type GenKillProblem interface {
	VectorProblem
	GenKill(n *cfg.Node) (gen, kill *bitvec.Vector)
}

// SolverMode selects the execution engine.
type SolverMode int

const (
	// SolveAuto picks sparse for gen/kill problems on reducible
	// graphs with sparse gen sites, dense otherwise.
	SolveAuto SolverMode = iota
	// SolveDense forces the priority-worklist dense engine.
	SolveDense
	// SolveSparse forces the per-bit sparse engine where the problem
	// shape allows it (gen/kill, intersect meet, all-ones top,
	// natural boundary); otherwise the dense engine still runs.
	SolveSparse
)

func (m SolverMode) String() string {
	switch m {
	case SolveDense:
		return "dense"
	case SolveSparse:
		return "sparse"
	default:
		return "auto"
	}
}

// ParseSolverMode maps a flag string to a SolverMode; unknown strings
// fall back to SolveAuto.
func ParseSolverMode(s string) SolverMode {
	switch s {
	case "dense":
		return SolveDense
	case "sparse":
		return SolveSparse
	default:
		return SolveAuto
	}
}

// Result holds the fixpoint solution of a vector problem.
type Result struct {
	// In and Out are indexed by cfg.NodeID: In is the value at
	// block entry, Out at block exit, regardless of direction.
	In, Out []*bitvec.Vector

	// Touched, when non-nil, lists every node whose In or Out may
	// differ from the previous solve's solution; values at all other
	// nodes are bit-identical to before. A nil Touched means the
	// solve gave no such guarantee (a full solve, or an engine that
	// does not track it) and every node must be treated as changed.
	// The slice aliases solver scratch and is invalidated by the
	// next solve.
	Touched []cfg.NodeID

	// Stats describes the solver run that produced this solution.
	Stats SolverStats
}

// SolverStats reports how much work the fixpoint iteration performed.
type SolverStats struct {
	// NodeVisits is the number of block transfer evaluations (dense)
	// or per-bit region node visits (sparse).
	NodeVisits int
	// Passes is the real convergence pass count: the dense priority
	// worklist drains in solve order, so every wraparound of its
	// scan cursor is one round-robin sweep. Sparse solves report 1.
	Passes int
	// MaxWorklistDepth is the high-water mark of pending worklist
	// entries (dense) or of the propagation stack (sparse).
	MaxWorklistDepth int
	// Seeded is the number of nodes placed on the initial worklist:
	// all nodes for a full dense solve, only the affected region for
	// an incremental one. Sparse solves report 0 — they have no
	// dense seeding to reuse.
	Seeded int
	// Pushes is the number of worklist insertions: the seeds plus
	// every requeue caused by a changed solution value.
	Pushes int
	// VecOps counts the bulk bit-vector operations the solve
	// performed (meet folds, transfer evaluations, change tests,
	// result copies; background fills for sparse).
	VecOps int
	// Sparse reports which engine produced the solution.
	Sparse bool
	// Cancelled reports that the solve was interrupted by the
	// solver's cancellation check before reaching the fixpoint. A
	// cancelled solution is PARTIAL — not a fixpoint of anything —
	// and must not justify any transformation; the solver discards
	// it and re-solves in full on its next use.
	Cancelled bool
}

// Solve computes the fixpoint of p on g with a worklist algorithm.
// Nodes drain in reverse postorder for forward problems and postorder
// for backward problems, which makes single-pass convergence typical
// for structured graphs while remaining correct on the irreducible
// ones the paper's Figure 5 exercises.
func Solve(g *cfg.Graph, p VectorProblem) *Result {
	return NewSolver(g, p).Full()
}

// Solver is a reusable worklist solver bound to one graph and one
// problem. It owns the solution storage (allocated from one slab) and
// the worklist scratch, so repeated solves — the driver's rounds —
// allocate nothing.
//
// The solver assumes the graph's node and edge structure stays fixed
// between solves; only block contents (the transfer functions) may
// change. The paper's driver satisfies this: critical edges are split
// once before the rounds, and synthetic-node cleanup happens after.
type Solver struct {
	g   *cfg.Graph
	p   VectorProblem
	gk  GenKillProblem // non-nil iff p has gen/kill form
	res Result

	arena    bitvec.Arena
	top      *bitvec.Vector
	boundary *bitvec.Vector
	tmp      *bitvec.Vector

	order   []*cfg.Node // solve order: RPO (forward) or PO (backward)
	pos     []int32     // NodeID -> position in order; -1 if absent
	forward bool

	wl       prioWorklist
	frontier []*cfg.Node  // scratch for Resolve's region BFS
	affected []bool       // scratch for Resolve's region marking
	touched  []cfg.NodeID // scratch backing Result.Touched
	solved   bool

	mode SolverMode
	// sparseOK caches whether the problem shape admits the sparse
	// engine at all (checked once; the shape cannot change).
	sparseOK bool
	// reducible caches cfg.Reducible(g), computed on first demand.
	reducible, reducibleKnown bool
	sp                        *sparseState

	cancel  func() bool
	metrics *obs.SolverMetrics
}

// SetCancel installs a cancellation check consulted periodically while
// the solve runs (every cancelCheckStride visits — cheap enough for
// time-based watchdogs). When it returns true the solve stops early:
// the result is marked Cancelled, is not a fixpoint, and must be
// discarded; the solver re-solves in full on its next use.
func (s *Solver) SetCancel(cancel func() bool) { s.cancel = cancel }

// SetMetrics installs a telemetry sink that every subsequent solve
// reports into (visits, pushes, passes, seeding, vector ops, engine).
// A nil sink — the default — keeps the solver silent.
func (s *Solver) SetMetrics(m *obs.SolverMetrics) { s.metrics = m }

// SetMode selects the execution engine for subsequent solves. The
// default is SolveAuto.
func (s *Solver) SetMode(m SolverMode) { s.mode = m }

// Mode returns the configured execution mode.
func (s *Solver) Mode() SolverMode { return s.mode }

// ArenaStats exposes the solution-storage arena's slab statistics.
func (s *Solver) ArenaStats() bitvec.ArenaStats { return s.arena.Stats() }

// flush reports a completed solve to the metrics sink, if any.
func (s *Solver) flush(kind obs.SolveKind) {
	if s.metrics == nil {
		return
	}
	st := s.res.Stats
	seedable := s.g.NumNodes()
	if st.Sparse {
		seedable = 0 // sparse solves have no dense seeding to reuse
	}
	s.metrics.RecordSolve(kind, obs.SolveCost{
		Visits:           st.NodeVisits,
		Pushes:           st.Pushes,
		Passes:           st.Passes,
		MaxWorklistDepth: st.MaxWorklistDepth,
		Seeded:           st.Seeded,
		Seedable:         seedable,
		VecOps:           st.VecOps,
		Sparse:           st.Sparse,
		Cancelled:        st.Cancelled,
	})
}

// cancelCheckStride is how many node visits pass between cancellation
// checks. Small enough that a watchdog fires promptly even on huge
// graphs, large enough to keep the check off the profile.
const cancelCheckStride = 64

// NewSolver creates a solver for p on g. No solving happens yet.
func NewSolver(g *cfg.Graph, p VectorProblem) *Solver {
	s := &Solver{g: g, p: p, forward: p.Direction() == Forward}
	s.gk, _ = p.(GenKillProblem)
	if s.forward {
		s.order = cfg.ReversePostorder(g)
	} else {
		s.order = cfg.Postorder(g)
	}
	n := g.NumNodes()
	s.res.In = make([]*bitvec.Vector, n)
	s.res.Out = make([]*bitvec.Vector, n)
	s.top = p.Top()
	s.boundary = p.Boundary()
	s.tmp = bitvec.New(p.Bits())
	s.pos = make([]int32, n)
	for i := range s.pos {
		s.pos[i] = -1
	}
	for i, node := range s.order {
		s.pos[node.ID] = int32(i)
	}
	s.wl.init(len(s.order))
	s.affected = make([]bool, n)
	s.frontier = make([]*cfg.Node, 0, len(s.order))
	for _, node := range g.Nodes() {
		s.res.In[node.ID] = s.arena.Copy(s.top)
		s.res.Out[node.ID] = s.arena.Copy(s.top)
	}
	// The sparse engine handles exactly the paper's shape: gen/kill
	// transfer, intersect meet, all-ones top, and the natural
	// boundary (all-zeros entry for forward problems, all-ones exit
	// for backward ones) that matches its background fill.
	if s.gk != nil && p.Meet() == Intersect && s.top.Count() == p.Bits() {
		if s.forward {
			s.sparseOK = s.boundary.IsZero()
		} else {
			s.sparseOK = s.boundary.Count() == p.Bits()
		}
	}
	return s
}

// Result returns the current solution. Valid after Full or Resolve.
func (s *Solver) Result() *Result { return &s.res }

// graphReducible lazily computes and caches cfg.Reducible(g).
func (s *Solver) graphReducible() bool {
	if !s.reducibleKnown {
		s.reducible = cfg.Reducible(s.g)
		s.reducibleKnown = true
	}
	return s.reducible
}

// Sparse-selection thresholds for SolveAuto. A sparse solve costs one
// background fill (≈2 vector sweeps) plus work proportional to the
// per-bit influence regions, which seed-site count approximates; a
// dense solve costs passes × nodes × words-per-vector word operations.
// Sparse wins when the universe is wide and gen sites are scarce
// relative to the dense sweep volume.
const (
	sparseMinBits    = 64
	sparseSeedCost   = 8
	denseSweepBudget = 6
)

// pickSparse decides the engine for the next solve.
func (s *Solver) pickSparse() bool {
	switch s.mode {
	case SolveDense:
		return false
	case SolveSparse:
		return s.sparseOK
	}
	if !s.sparseOK || s.p.Bits() < sparseMinBits {
		return false
	}
	// Irreducible graphs go dense: the priority worklist's pass
	// bound degrades there anyway, and keeping one engine for the
	// hard cases keeps the fallback well-exercised (Figure 5).
	if !s.graphReducible() {
		return false
	}
	seeds := 0
	for _, n := range s.order {
		gen, kill := s.gk.GenKill(n)
		if s.forward {
			seeds += gen.Count()
		} else {
			s.tmp.AndNotInto(kill, gen)
			seeds += s.tmp.Count()
		}
	}
	words := (s.p.Bits() + 63) / 64
	return seeds*sparseSeedCost <= len(s.order)*words*denseSweepBudget
}

// Full solves from scratch: every node re-initialized to top, every
// node seeded (dense), or every bit propagated from its gen sites
// (sparse).
func (s *Solver) Full() *Result {
	s.res.Touched = nil
	if s.pickSparse() {
		return s.solveSparse(obs.SolveFull)
	}
	for _, node := range s.g.Nodes() {
		s.res.In[node.ID].CopyFrom(s.top)
		s.res.Out[node.ID].CopyFrom(s.top)
	}
	s.applyBoundary()
	s.wl.clear()
	for i := range s.order {
		s.wl.push(i)
	}
	s.res.Stats = SolverStats{Seeded: len(s.order), Pushes: len(s.order)}
	s.run()
	s.solved = !s.res.Stats.Cancelled
	s.flush(obs.SolveFull)
	return &s.res
}

// Resolve re-solves after the blocks in dirty changed, reusing the
// previous solution everywhere the change cannot reach.
//
// The affected region is the set of nodes whose solution value can
// depend on a dirty block's content: for a backward problem the dirty
// blocks and everything that reaches them (transitive predecessors),
// for a forward problem the dirty blocks and everything they reach.
// Values outside the region form a closed subsystem whose equations
// did not change, so their old values are exactly the new greatest
// fixpoint there; inside the region values restart from top, which
// makes the descending iteration converge to the exact greatest
// fixpoint of the updated system — byte-identical to a full solve.
//
// When the sparse engine is selected it re-solves in full instead:
// its frontiers are re-derived from the problem's current gen/kill
// sites each time, which re-seeds changed blocks by construction, and
// its cost already scales with the gen sites rather than the graph.
// Either engine may serve consecutive Resolves — both converge to the
// same greatest fixpoint, so their solutions are interchangeable as
// reuse baselines.
//
// Resolve on an unsolved Solver falls back to Full. An empty dirty set
// returns the previous solution untouched.
func (s *Solver) Resolve(dirty []cfg.NodeID) *Result {
	return s.ResolveDelta(dirty, nil)
}

// ResolveDelta is Resolve with an optional changed-bits mask: when
// non-nil, the caller asserts that every gen/kill bit that differs
// from the previous solve — at any node — is set in the mask. (The
// incremental analyses produce the mask for free while recomputing
// their dirty blocks' local predicates.) Bits outside the mask have
// unchanged equations everywhere; the bit-vector frameworks here are
// bitwise independent, so the previous solution's columns for those
// bits are already the greatest fixpoint and only the masked bits need
// re-solving. When the sparse engine is eligible and the mask is
// narrow, the solve clears and recomputes just those columns instead
// of re-running every bit, and reports the nodes it moved through
// Result.Touched.
//
// A nil mask makes no assertion and re-solves every bit of the
// affected region (the classic Resolve).
func (s *Solver) ResolveDelta(dirty []cfg.NodeID, changed *bitvec.Vector) *Result {
	if !s.solved {
		return s.Full()
	}
	if len(dirty) == 0 {
		s.res.Stats = SolverStats{}
		s.res.Touched = s.touched[:0] // nothing changed anywhere
		if s.metrics != nil {
			s.metrics.RecordCacheHit()
		}
		return &s.res
	}
	if changed != nil && s.sparseDeltaEligible(changed) {
		return s.solveSparseDelta(changed)
	}
	if s.pickSparse() {
		s.res.Touched = nil
		return s.solveSparse(obs.SolveIncremental)
	}

	// Mark the affected region by BFS against the flow direction of
	// dependence: backward problems depend on successors, so a dirty
	// node invalidates its transitive predecessors; forward dually.
	clear(s.affected)
	frontier := s.frontier[:0]
	touched := s.touched[:0]
	for _, id := range dirty {
		if !s.affected[id] {
			s.affected[id] = true
			touched = append(touched, id)
			frontier = append(frontier, s.g.Node(id))
		}
	}
	for len(frontier) > 0 {
		node := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		var deps []*cfg.Node
		if s.forward {
			deps = node.Succs()
		} else {
			deps = node.Preds()
		}
		for _, d := range deps {
			if !s.affected[d.ID] {
				s.affected[d.ID] = true
				touched = append(touched, d.ID)
				frontier = append(frontier, d)
			}
		}
	}
	s.touched = touched

	// Re-initialize and seed only the affected region.
	s.wl.clear()
	seeded := 0
	for i, node := range s.order {
		if !s.affected[node.ID] {
			continue
		}
		s.res.In[node.ID].CopyFrom(s.top)
		s.res.Out[node.ID].CopyFrom(s.top)
		s.wl.push(i)
		seeded++
	}
	s.applyBoundary()
	s.res.Stats = SolverStats{Seeded: seeded, Pushes: seeded}
	s.run()
	// Values outside the affected region provably kept their old
	// bits; a cancelled run guarantees nothing.
	s.res.Touched = touched
	if s.res.Stats.Cancelled {
		s.solved = false
		s.res.Touched = nil
	}
	s.flush(obs.SolveIncremental)
	return &s.res
}

// sparseDeltaThresholdWords bounds the per-bit column rewrites of a
// delta solve: clearing one bit's column costs two word operations per
// node, so once the changed-bit count rivals a few vector widths, a
// plain background refill (which pays words-per-vector per node once)
// plus a full sparse solve is cheaper.
const sparseDeltaThresholdWords = 4

// sparseDeltaEligible reports whether the delta path should serve a
// re-solve for the given changed-bits mask. The gates mirror pickSparse
// (shape, width, reducibility) with the density test replaced by the
// mask-width threshold; SolveDense always wins, and a forced
// SolveSparse skips only the width/reducibility gates.
func (s *Solver) sparseDeltaEligible(changed *bitvec.Vector) bool {
	if !s.sparseOK || s.mode == SolveDense {
		return false
	}
	if s.mode != SolveSparse {
		if s.p.Bits() < sparseMinBits || !s.graphReducible() {
			return false
		}
	}
	words := (s.p.Bits() + 63) / 64
	return changed.Count() <= words*sparseDeltaThresholdWords
}

func (s *Solver) applyBoundary() {
	if s.forward {
		s.res.In[s.g.Start.ID].CopyFrom(s.boundary)
	} else {
		s.res.Out[s.g.End.ID].CopyFrom(s.boundary)
	}
}

// run drains the priority worklist. Membership lives in a bitset over
// solve-order positions; the scan cursor pops the lowest pending
// position at or after itself, so nodes drain in reverse postorder
// (forward) or postorder (backward) and every cursor wraparound is one
// complete round-robin sweep — the Passes statistic counts exactly
// those sweeps.
func (s *Solver) run() {
	res := &s.res
	p := s.p
	g := s.g
	intersect := p.Meet() == Intersect

	vecOps, pushes, visits := 0, 0, 0
	passes := 0
	maxDepth := s.wl.size
	if s.wl.size > 0 {
		passes = 1
	}
	scan := 0

	meetInto := func(dst, src *bitvec.Vector) {
		vecOps++
		if intersect {
			dst.And(src)
		} else {
			dst.Or(src)
		}
	}
	pushDep := func(id cfg.NodeID) {
		if pp := s.pos[id]; pp >= 0 && s.wl.push(int(pp)) {
			pushes++
			if s.wl.size > maxDepth {
				maxDepth = s.wl.size
			}
		}
	}

	for s.wl.size > 0 {
		if s.cancel != nil && visits%cancelCheckStride == 0 && s.cancel() {
			// Abandon the solve: drop the pending worklist and
			// mark the result partial.
			s.wl.clear()
			res.Stats.Cancelled = true
			break
		}
		pos := s.wl.pop(scan)
		if pos < 0 {
			pos = s.wl.pop(0)
			passes++
		}
		scan = pos + 1
		node := s.order[pos]
		visits++
		faultinject.Fire(faultinject.SolverVisit, nil)

		if s.forward {
			// Meet predecessors into In (except at Start,
			// whose In is the fixed boundary).
			if node != g.Start {
				in := res.In[node.ID]
				if preds := node.Preds(); len(preds) > 0 {
					in.CopyFrom(res.Out[preds[0].ID])
					vecOps++
					for _, pr := range preds[1:] {
						meetInto(in, res.Out[pr.ID])
					}
				}
			}
			var changed bool
			if s.gk != nil {
				gen, kill := s.gk.GenKill(node)
				changed = res.Out[node.ID].AndNotOrInto(res.In[node.ID], kill, gen)
				vecOps++ // one fused transfer-and-change-test pass
			} else {
				p.Transfer(node, res.In[node.ID], s.tmp)
				vecOps += 2 // the transfer evaluation and the change test
				if changed = !s.tmp.Equal(res.Out[node.ID]); changed {
					res.Out[node.ID].CopyFrom(s.tmp)
					vecOps++
				}
			}
			if changed {
				for _, succ := range node.Succs() {
					pushDep(succ.ID)
				}
			}
		} else {
			if node != g.End {
				out := res.Out[node.ID]
				if succs := node.Succs(); len(succs) > 0 {
					out.CopyFrom(res.In[succs[0].ID])
					vecOps++
					for _, succ := range succs[1:] {
						meetInto(out, res.In[succ.ID])
					}
				}
			}
			var changed bool
			if s.gk != nil {
				gen, kill := s.gk.GenKill(node)
				changed = res.In[node.ID].AndNotOrInto(res.Out[node.ID], kill, gen)
				vecOps++
			} else {
				p.Transfer(node, res.Out[node.ID], s.tmp)
				vecOps += 2
				if changed = !s.tmp.Equal(res.In[node.ID]); changed {
					res.In[node.ID].CopyFrom(s.tmp)
					vecOps++
				}
			}
			if changed {
				for _, pr := range node.Preds() {
					pushDep(pr.ID)
				}
			}
		}
	}
	res.Stats.NodeVisits += visits
	res.Stats.Pushes += pushes
	res.Stats.VecOps += vecOps
	res.Stats.Passes = passes
	res.Stats.MaxWorklistDepth = maxDepth
}

// prioWorklist is a bitset-backed priority queue over solve-order
// positions. push sets a bit; pop(from) clears and returns the lowest
// set position at or after from, or -1. Draining with a wrapping scan
// cursor yields round-robin sweeps in solve order.
type prioWorklist struct {
	words []uint64
	n     int // number of positions
	size  int // bits currently set
}

func (w *prioWorklist) init(n int) {
	w.n = n
	w.words = make([]uint64, (n+63)/64)
	w.size = 0
}

func (w *prioWorklist) clear() {
	for i := range w.words {
		w.words[i] = 0
	}
	w.size = 0
}

// push inserts pos; reports whether it was newly inserted.
func (w *prioWorklist) push(pos int) bool {
	idx, bit := pos>>6, uint64(1)<<(uint(pos)&63)
	if w.words[idx]&bit != 0 {
		return false
	}
	w.words[idx] |= bit
	w.size++
	return true
}

// pop removes and returns the lowest set position >= from, or -1.
func (w *prioWorklist) pop(from int) int {
	if from >= w.n {
		return -1
	}
	idx := from >> 6
	word := w.words[idx] &^ ((uint64(1) << (uint(from) & 63)) - 1)
	for {
		if word != 0 {
			bit := bits.TrailingZeros64(word)
			pos := idx<<6 + bit
			w.words[idx] &^= uint64(1) << uint(bit)
			w.size--
			return pos
		}
		idx++
		if idx >= len(w.words) {
			return -1
		}
		word = w.words[idx]
	}
}
