// Package dataflow provides the two solving regimes the paper's
// analyses need:
//
//   - a block-level worklist solver for monotone vector problems
//     (dead variables, delayability — the bit-vector analyses of
//     Tables 1 and 2), and
//   - an instruction-level flattening of a flow graph (FlatProgram),
//     on which the slotwise worklist algorithm of Dhamdhere, Rosen and
//     Zadeck solves the faint-variable problem, which is not a
//     bit-vector problem (Section 5.2, Section 6.1.2).
//
// All paper analyses take greatest fixpoints: solvers initialize to the
// problem's top value and iterate downwards. Solvers record iteration
// statistics so cmd/benchpaper can report empirical convergence
// behaviour against Section 6's estimates.
//
// Beyond the one-shot Solve, the Solver type supports the fixpoint
// driver's round structure: it owns its In/Out storage (slab-allocated,
// reused across solves) and can re-solve incrementally after a known
// set of blocks changed, re-seeding from the previous solution instead
// of re-initializing the whole graph to top.
package dataflow

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/faultinject"
	"pdce/internal/obs"
)

// Direction of a dataflow problem.
type Direction int

// Problem directions.
const (
	Forward Direction = iota
	Backward
)

// Meet is the confluence operator combining values flowing into a
// node.
type Meet int

// Confluence operators. Intersect realizes "on all paths" (product in
// the paper's equation systems), Union realizes "on some path".
const (
	Intersect Meet = iota
	Union
)

// VectorProblem describes a monotone block-level vector problem.
//
// For Forward problems the solver computes
//
//	In(n)  = meet over p ∈ pred(n) of Out(p)      (Boundary at Start)
//	Out(n) = Transfer(n, In(n))
//
// and dually for Backward problems (In/Out swap roles: Out(n) is met
// over successors, In(n) = Transfer over the block).
type VectorProblem interface {
	// Bits is the width of the vectors (size of the analysis
	// universe).
	Bits() int

	Direction() Direction
	Meet() Meet

	// Boundary is the fixed value at the graph boundary: the entry
	// value of Start for forward problems, the exit value of End
	// for backward problems.
	Boundary() *bitvec.Vector

	// Top is the initial optimistic value for all other nodes. The
	// paper's analyses compute greatest solutions, so Top is
	// all-ones for them.
	Top() *bitvec.Vector

	// Transfer applies the block's transfer function to the value
	// at its input side (entry for forward, exit for backward),
	// writing the result into out. in must not be modified.
	Transfer(n *cfg.Node, in, out *bitvec.Vector)
}

// Result holds the fixpoint solution of a vector problem.
type Result struct {
	// In and Out are indexed by cfg.NodeID: In is the value at
	// block entry, Out at block exit, regardless of direction.
	In, Out []*bitvec.Vector

	// Stats describes the solver run that produced this solution.
	Stats SolverStats
}

// SolverStats reports how much work the fixpoint iteration performed.
type SolverStats struct {
	// NodeVisits is the number of block transfer evaluations.
	NodeVisits int
	// Passes is an upper estimate of sweep count: visits divided by
	// node count, rounded up.
	Passes int
	// Seeded is the number of nodes placed on the initial worklist:
	// all nodes for a full solve, only the affected region for an
	// incremental one.
	Seeded int
	// Pushes is the number of worklist insertions: the seeds plus
	// every requeue caused by a changed solution value.
	Pushes int
	// VecOps counts the bulk bit-vector operations the solve
	// performed (meet folds, transfer evaluations, change tests,
	// result copies).
	VecOps int
	// Cancelled reports that the solve was interrupted by the
	// solver's cancellation check before reaching the fixpoint. A
	// cancelled solution is PARTIAL — still above the greatest
	// fixpoint — and must not justify any transformation.
	Cancelled bool
}

// Solve computes the fixpoint of p on g with a worklist algorithm.
// Nodes are seeded in reverse postorder for forward problems and
// postorder for backward problems, which makes single-pass convergence
// typical for structured graphs while remaining correct on the
// irreducible ones the paper's Figure 5 exercises.
func Solve(g *cfg.Graph, p VectorProblem) *Result {
	return NewSolver(g, p).Full()
}

// Solver is a reusable worklist solver bound to one graph and one
// problem. It owns the solution storage (allocated from one slab) and
// the worklist scratch, so repeated solves — the driver's rounds —
// allocate nothing.
//
// The solver assumes the graph's node and edge structure stays fixed
// between solves; only block contents (the transfer functions) may
// change. The paper's driver satisfies this: critical edges are split
// once before the rounds, and synthetic-node cleanup happens after.
type Solver struct {
	g   *cfg.Graph
	p   VectorProblem
	res Result

	arena    bitvec.Arena
	top      *bitvec.Vector
	boundary *bitvec.Vector
	tmp      *bitvec.Vector

	order   []*cfg.Node // solve order: RPO (forward) or PO (backward)
	forward bool

	inQueue  []bool
	queue    []*cfg.Node
	affected []bool // scratch for Resolve's region marking
	solved   bool

	cancel  func() bool
	metrics *obs.SolverMetrics
}

// SetCancel installs a cancellation check consulted periodically while
// the worklist drains (every cancelCheckStride visits — cheap enough
// for time-based watchdogs). When it returns true the solve stops
// early: the result is marked Cancelled, is not a fixpoint, and must
// be discarded; the solver re-solves in full on its next use.
func (s *Solver) SetCancel(cancel func() bool) { s.cancel = cancel }

// SetMetrics installs a telemetry sink that every subsequent solve
// reports into (visits, pushes, seeding, vector ops, solve kind). A
// nil sink — the default — keeps the solver silent.
func (s *Solver) SetMetrics(m *obs.SolverMetrics) { s.metrics = m }

// ArenaStats exposes the solution-storage arena's slab statistics.
func (s *Solver) ArenaStats() bitvec.ArenaStats { return s.arena.Stats() }

// flush reports a completed solve to the metrics sink, if any.
func (s *Solver) flush(kind obs.SolveKind) {
	if s.metrics == nil {
		return
	}
	st := s.res.Stats
	s.metrics.RecordSolve(kind, st.NodeVisits, st.Pushes, st.Seeded, s.g.NumNodes(), st.VecOps, st.Cancelled)
}

// cancelCheckStride is how many node visits pass between cancellation
// checks. Small enough that a watchdog fires promptly even on huge
// graphs, large enough to keep the check off the profile.
const cancelCheckStride = 64

// NewSolver creates a solver for p on g. No solving happens yet.
func NewSolver(g *cfg.Graph, p VectorProblem) *Solver {
	s := &Solver{g: g, p: p, forward: p.Direction() == Forward}
	if s.forward {
		s.order = cfg.ReversePostorder(g)
	} else {
		s.order = cfg.Postorder(g)
	}
	n := g.NumNodes()
	s.res.In = make([]*bitvec.Vector, n)
	s.res.Out = make([]*bitvec.Vector, n)
	s.top = p.Top()
	s.boundary = p.Boundary()
	s.tmp = bitvec.New(p.Bits())
	s.inQueue = make([]bool, n)
	s.affected = make([]bool, n)
	s.queue = make([]*cfg.Node, 0, len(s.order))
	for _, node := range g.Nodes() {
		s.res.In[node.ID] = s.arena.Copy(s.top)
		s.res.Out[node.ID] = s.arena.Copy(s.top)
	}
	return s
}

// Result returns the current solution. Valid after Full or Resolve.
func (s *Solver) Result() *Result { return &s.res }

// Full solves from scratch: every node re-initialized to top, every
// node seeded.
func (s *Solver) Full() *Result {
	for _, node := range s.g.Nodes() {
		s.res.In[node.ID].CopyFrom(s.top)
		s.res.Out[node.ID].CopyFrom(s.top)
	}
	s.applyBoundary()
	s.queue = s.queue[:0]
	for _, node := range s.order {
		s.queue = append(s.queue, node)
		s.inQueue[node.ID] = true
	}
	s.res.Stats = SolverStats{Seeded: len(s.queue), Pushes: len(s.queue)}
	s.run()
	s.solved = !s.res.Stats.Cancelled
	s.flush(obs.SolveFull)
	return &s.res
}

// Resolve re-solves after the blocks in dirty changed, reusing the
// previous solution everywhere the change cannot reach.
//
// The affected region is the set of nodes whose solution value can
// depend on a dirty block's content: for a backward problem the dirty
// blocks and everything that reaches them (transitive predecessors),
// for a forward problem the dirty blocks and everything they reach.
// Values outside the region form a closed subsystem whose equations
// did not change, so their old values are exactly the new greatest
// fixpoint there; inside the region values restart from top, which
// makes the descending iteration converge to the exact greatest
// fixpoint of the updated system — byte-identical to a full solve.
//
// Resolve on an unsolved Solver falls back to Full. An empty dirty set
// returns the previous solution untouched.
func (s *Solver) Resolve(dirty []cfg.NodeID) *Result {
	if !s.solved {
		return s.Full()
	}
	if len(dirty) == 0 {
		s.res.Stats = SolverStats{}
		if s.metrics != nil {
			s.metrics.RecordCacheHit()
		}
		return &s.res
	}

	// Mark the affected region by BFS against the flow direction of
	// dependence: backward problems depend on successors, so a dirty
	// node invalidates its transitive predecessors; forward dually.
	clear(s.affected)
	frontier := s.queue[:0] // reuse queue storage as BFS scratch
	for _, id := range dirty {
		if !s.affected[id] {
			s.affected[id] = true
			frontier = append(frontier, s.g.Node(id))
		}
	}
	for len(frontier) > 0 {
		node := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		var deps []*cfg.Node
		if s.forward {
			deps = node.Succs()
		} else {
			deps = node.Preds()
		}
		for _, d := range deps {
			if !s.affected[d.ID] {
				s.affected[d.ID] = true
				frontier = append(frontier, d)
			}
		}
	}

	// Re-initialize and seed only the affected region, in solve
	// order.
	s.queue = s.queue[:0]
	for _, node := range s.order {
		if !s.affected[node.ID] {
			continue
		}
		s.res.In[node.ID].CopyFrom(s.top)
		s.res.Out[node.ID].CopyFrom(s.top)
		s.queue = append(s.queue, node)
		s.inQueue[node.ID] = true
	}
	s.applyBoundary()
	s.res.Stats = SolverStats{Seeded: len(s.queue), Pushes: len(s.queue)}
	s.run()
	if s.res.Stats.Cancelled {
		s.solved = false
	}
	s.flush(obs.SolveIncremental)
	return &s.res
}

func (s *Solver) applyBoundary() {
	if s.forward {
		s.res.In[s.g.Start.ID].CopyFrom(s.boundary)
	} else {
		s.res.Out[s.g.End.ID].CopyFrom(s.boundary)
	}
}

// run drains the worklist. The queue is consumed via a head index —
// re-slicing the backing array from the front would pin its full
// length for the life of the solve (and grow it on every requeue).
func (s *Solver) run() {
	res := &s.res
	p := s.p
	g := s.g
	intersect := p.Meet() == Intersect

	vecOps, pushes := 0, 0
	meetInto := func(dst, src *bitvec.Vector) {
		vecOps++
		if intersect {
			dst.And(src)
		} else {
			dst.Or(src)
		}
	}

	for head := 0; head < len(s.queue); head++ {
		if s.cancel != nil && head%cancelCheckStride == 0 && s.cancel() {
			// Abandon the solve: un-queue the pending nodes so
			// the flags stay consistent for the next (full)
			// solve, and mark the result partial.
			for _, pending := range s.queue[head:] {
				s.inQueue[pending.ID] = false
			}
			s.queue = s.queue[:0]
			res.Stats.Cancelled = true
			return
		}
		node := s.queue[head]
		s.inQueue[node.ID] = false
		res.Stats.NodeVisits++
		faultinject.Fire(faultinject.SolverVisit, nil)

		if s.forward {
			// Meet predecessors into In (except at Start,
			// whose In is the fixed boundary).
			if node != g.Start {
				in := res.In[node.ID]
				if preds := node.Preds(); len(preds) > 0 {
					in.CopyFrom(res.Out[preds[0].ID])
					vecOps++
					for _, pr := range preds[1:] {
						meetInto(in, res.Out[pr.ID])
					}
				}
			}
			p.Transfer(node, res.In[node.ID], s.tmp)
			vecOps += 2 // the transfer evaluation and the change test
			if !s.tmp.Equal(res.Out[node.ID]) {
				res.Out[node.ID].CopyFrom(s.tmp)
				vecOps++
				for _, succ := range node.Succs() {
					if !s.inQueue[succ.ID] {
						s.inQueue[succ.ID] = true
						s.queue = append(s.queue, succ)
						pushes++
					}
				}
			}
		} else {
			if node != g.End {
				out := res.Out[node.ID]
				if succs := node.Succs(); len(succs) > 0 {
					out.CopyFrom(res.In[succs[0].ID])
					vecOps++
					for _, succ := range succs[1:] {
						meetInto(out, res.In[succ.ID])
					}
				}
			}
			p.Transfer(node, res.Out[node.ID], s.tmp)
			vecOps += 2 // the transfer evaluation and the change test
			if !s.tmp.Equal(res.In[node.ID]) {
				res.In[node.ID].CopyFrom(s.tmp)
				vecOps++
				for _, pr := range node.Preds() {
					if !s.inQueue[pr.ID] {
						s.inQueue[pr.ID] = true
						s.queue = append(s.queue, pr)
						pushes++
					}
				}
			}
		}
	}
	s.queue = s.queue[:0]
	res.Stats.Pushes += pushes
	res.Stats.VecOps += vecOps
	if n := g.NumNodes(); n > 0 {
		res.Stats.Passes = (res.Stats.NodeVisits + n - 1) / n
	}
}
