// Package dataflow provides the two solving regimes the paper's
// analyses need:
//
//   - a block-level worklist solver for monotone vector problems
//     (dead variables, delayability — the bit-vector analyses of
//     Tables 1 and 2), and
//   - an instruction-level flattening of a flow graph (FlatProgram),
//     on which the slotwise worklist algorithm of Dhamdhere, Rosen and
//     Zadeck solves the faint-variable problem, which is not a
//     bit-vector problem (Section 5.2, Section 6.1.2).
//
// All paper analyses take greatest fixpoints: solvers initialize to the
// problem's top value and iterate downwards. Solvers record iteration
// statistics so cmd/benchpaper can report empirical convergence
// behaviour against Section 6's estimates.
package dataflow

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
)

// Direction of a dataflow problem.
type Direction int

// Problem directions.
const (
	Forward Direction = iota
	Backward
)

// Meet is the confluence operator combining values flowing into a
// node.
type Meet int

// Confluence operators. Intersect realizes "on all paths" (product in
// the paper's equation systems), Union realizes "on some path".
const (
	Intersect Meet = iota
	Union
)

// VectorProblem describes a monotone block-level vector problem.
//
// For Forward problems the solver computes
//
//	In(n)  = meet over p ∈ pred(n) of Out(p)      (Boundary at Start)
//	Out(n) = Transfer(n, In(n))
//
// and dually for Backward problems (In/Out swap roles: Out(n) is met
// over successors, In(n) = Transfer over the block).
type VectorProblem interface {
	// Bits is the width of the vectors (size of the analysis
	// universe).
	Bits() int

	Direction() Direction
	Meet() Meet

	// Boundary is the fixed value at the graph boundary: the entry
	// value of Start for forward problems, the exit value of End
	// for backward problems.
	Boundary() *bitvec.Vector

	// Top is the initial optimistic value for all other nodes. The
	// paper's analyses compute greatest solutions, so Top is
	// all-ones for them.
	Top() *bitvec.Vector

	// Transfer applies the block's transfer function to the value
	// at its input side (entry for forward, exit for backward),
	// writing the result into out. in must not be modified.
	Transfer(n *cfg.Node, in, out *bitvec.Vector)
}

// Result holds the fixpoint solution of a vector problem.
type Result struct {
	// In and Out are indexed by cfg.NodeID: In is the value at
	// block entry, Out at block exit, regardless of direction.
	In, Out []*bitvec.Vector

	// Stats describes the solver run.
	Stats SolverStats
}

// SolverStats reports how much work the fixpoint iteration performed.
type SolverStats struct {
	// NodeVisits is the number of block transfer evaluations.
	NodeVisits int
	// Passes is an upper estimate of sweep count: visits divided by
	// node count, rounded up.
	Passes int
}

// Solve computes the fixpoint of p on g with a worklist algorithm.
// Nodes are seeded in reverse postorder for forward problems and
// postorder for backward problems, which makes single-pass convergence
// typical for structured graphs while remaining correct on the
// irreducible ones the paper's Figure 5 exercises.
func Solve(g *cfg.Graph, p VectorProblem) *Result {
	n := g.NumNodes()
	res := &Result{
		In:  make([]*bitvec.Vector, n),
		Out: make([]*bitvec.Vector, n),
	}
	forward := p.Direction() == Forward

	var order []*cfg.Node
	if forward {
		order = cfg.ReversePostorder(g)
	} else {
		order = cfg.Postorder(g)
	}

	for _, node := range g.Nodes() {
		res.In[node.ID] = p.Top()
		res.Out[node.ID] = p.Top()
	}
	if forward {
		res.In[g.Start.ID] = p.Boundary()
	} else {
		res.Out[g.End.ID] = p.Boundary()
	}

	inQueue := make([]bool, n)
	queue := make([]*cfg.Node, 0, len(order))
	for _, node := range order {
		queue = append(queue, node)
		inQueue[node.ID] = true
	}

	meetInto := func(dst *bitvec.Vector, src *bitvec.Vector) bool {
		if p.Meet() == Intersect {
			return dst.And(src)
		}
		return dst.Or(src)
	}

	tmp := bitvec.New(p.Bits())
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		inQueue[node.ID] = false
		res.Stats.NodeVisits++

		if forward {
			// Meet predecessors into In (except at Start,
			// whose In is the fixed boundary).
			if node != g.Start {
				in := res.In[node.ID]
				if len(node.Preds()) > 0 {
					in.CopyFrom(res.Out[node.Preds()[0].ID])
					for _, pr := range node.Preds()[1:] {
						meetInto(in, res.Out[pr.ID])
					}
				}
			}
			p.Transfer(node, res.In[node.ID], tmp)
			if !tmp.Equal(res.Out[node.ID]) {
				res.Out[node.ID].CopyFrom(tmp)
				for _, s := range node.Succs() {
					if !inQueue[s.ID] {
						inQueue[s.ID] = true
						queue = append(queue, s)
					}
				}
			}
		} else {
			if node != g.End {
				out := res.Out[node.ID]
				if len(node.Succs()) > 0 {
					out.CopyFrom(res.In[node.Succs()[0].ID])
					for _, s := range node.Succs()[1:] {
						meetInto(out, res.In[s.ID])
					}
				}
			}
			p.Transfer(node, res.Out[node.ID], tmp)
			if !tmp.Equal(res.In[node.ID]) {
				res.In[node.ID].CopyFrom(tmp)
				for _, pr := range node.Preds() {
					if !inQueue[pr.ID] {
						inQueue[pr.ID] = true
						queue = append(queue, pr)
					}
				}
			}
		}
	}
	if n > 0 {
		res.Stats.Passes = (res.Stats.NodeVisits + n - 1) / n
	}
	return res
}
