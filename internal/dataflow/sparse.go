package dataflow

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/faultinject"
	"pdce/internal/obs"
)

// The sparse engine solves a gen/kill, intersect-meet, all-ones-top
// problem one bit at a time, touching only the region of the graph
// each bit's gen and kill sites can influence. It is exact — it
// computes the same greatest fixpoint as the dense engine, on any
// graph shape — but its cost scales with the gen/kill sites instead of
// nodes × universe width, which is the win the paper's equation
// systems invite: a pattern's delayability is all-zero outside the
// region its candidate occurrences reach, and a variable's deadness is
// all-ones outside the region its uses reach backwards.
//
// Forward (delayability shape: boundary all-zeros, so the background
// value is 0 and the solve raises bits):
//
//  1. From the bit's gen sites, flood forward through non-kill nodes
//     to find every node whose In or Out could be 1 ("possible"
//     region). Out is possible at a gen site regardless of kill; In is
//     possible at every successor of an out-possible node.
//  2. The flood is an over-approximation: the intersect meet zeroes In
//     wherever ANY predecessor's Out is not possible (or the node is
//     Start, whose In is the all-zeros boundary). Initialize the
//     region optimistically to 1 and propagate those zeros to closure:
//     In falling to 0 drops Out to 0 unless the node is a gen site,
//     and a dropped Out re-examines the successors' Ins. What survives
//     is exactly the greatest fixpoint restricted to this bit.
//  3. Write the surviving 1s onto the all-zeros background.
//
// Backward (dead-variables shape: boundary all-ones, background 1, the
// solve lowers bits): zeros need no region discovery, they propagate
// directly. A node whose block kills the bit without regenerating it
// (kill AND NOT gen — for dead variables: a use not shadowed by an
// earlier pure definition) forces In = 0; In(n) = 0 forces Out(p) = 0
// for every predecessor p (intersect over successors), except End,
// whose Out is the all-ones boundary; Out(p) = 0 forces In(p) = 0
// unless p's block regenerates the bit. The closure of that relation
// is exactly the set of 0s in the greatest fixpoint; everything else
// keeps the background 1.
type sparseState struct {
	// stamp/flags are per-NodeID scratch, valid for the bit whose
	// epoch matches; epoch bumping replaces O(nodes) clearing.
	stamp []uint32
	flags []uint8
	epoch uint32

	region []int32 // NodeIDs touched by the current bit
	stack  []int32
	fall   []int32 // forward phase 2: nodes whose Out newly fell to 0

	// gen/kill vectors gathered per NodeID at solve start.
	gen  []*bitvec.Vector
	kill []*bitvec.Vector

	// seed buckets: seedNodes[seedOff[b-1]:seedOff[b]] lists the
	// NodeIDs whose block seeds bit b (gen sites forward, kill&^gen
	// sites backward).
	seedOff   []int32
	seedNodes []int32

	// Delta-solve scratch: the list of bits being re-solved and the
	// stamp set collecting Result.Touched across them.
	bitList    []int32
	touchStamp []uint32
	touchEpoch uint32
}

// Per-bit flag bits. Forward uses all four ("possible" from phase 1,
// "value" from phase 2); backward uses the two zero marks.
const (
	fInPoss uint8 = 1 << iota
	fOutPoss
	fInVal
	fOutVal

	bInZero  = fInPoss
	bOutZero = fOutPoss
)

func (s *Solver) ensureSparse() *sparseState {
	if s.sp == nil {
		n := s.g.NumNodes()
		s.sp = &sparseState{
			stamp:   make([]uint32, n),
			flags:   make([]uint8, n),
			gen:     make([]*bitvec.Vector, n),
			kill:    make([]*bitvec.Vector, n),
			seedOff: make([]int32, s.p.Bits()+1),
		}
	}
	return s.sp
}

// enter stamps id into the current bit's working set, returning its
// flags (zeroed on first touch).
func (sp *sparseState) enter(id int32) uint8 {
	if sp.stamp[id] != sp.epoch {
		sp.stamp[id] = sp.epoch
		sp.flags[id] = 0
		sp.region = append(sp.region, id)
	}
	return sp.flags[id]
}

// peek reads id's flags without entering it.
func (sp *sparseState) peek(id int32) uint8 {
	if sp.stamp[id] != sp.epoch {
		return 0
	}
	return sp.flags[id]
}

// bumpEpoch starts a fresh per-bit working set, handling stamp
// wraparound.
func (sp *sparseState) bumpEpoch() {
	sp.epoch++
	if sp.epoch == 0 { // wrapped: stamps are ambiguous, reset
		for i := range sp.stamp {
			sp.stamp[i] = 0
		}
		sp.epoch = 1
	}
	sp.region = sp.region[:0]
}

// solveSparseDelta re-solves only the bits of the changed mask on top
// of the previous solution: each changed bit's column is reset to the
// background value (tracking which nodes actually held a foreground
// bit) and then re-solved from its current seed sites exactly like a
// full sparse solve of that bit. Bits outside the mask keep their old
// columns — by the caller's contract their equations did not change,
// and each bit's greatest fixpoint depends on its own gen/kill sites
// alone, so those columns are already exact. The union of reset and
// re-written nodes becomes Result.Touched.
func (s *Solver) solveSparseDelta(changed *bitvec.Vector) *Result {
	sp := s.ensureSparse()
	bitsN := s.p.Bits()

	for _, n := range s.order {
		sp.gen[n.ID], sp.kill[n.ID] = s.gk.GenKill(n)
	}

	// Bucket the seed sites of the changed bits only; the masked
	// enumerations skip whole words of gen/kill where the mask is
	// zero, so the gather scales with the mask width, not the
	// universe width.
	off := sp.seedOff
	for i := range off {
		off[i] = 0
	}
	total := 0
	for _, n := range s.order {
		count := func(b int) { off[b+1]++; total++ }
		if s.forward {
			sp.gen[n.ID].ForEachAnd(changed, count)
		} else {
			sp.kill[n.ID].ForEachAndNotAnd(sp.gen[n.ID], changed, count)
		}
	}
	for b := 1; b <= bitsN; b++ {
		off[b] += off[b-1]
	}
	if cap(sp.seedNodes) < total {
		sp.seedNodes = make([]int32, total)
	}
	sp.seedNodes = sp.seedNodes[:total]
	for _, n := range s.order {
		id := int32(n.ID)
		fill := func(b int) { sp.seedNodes[off[b]] = id; off[b]++ }
		if s.forward {
			sp.gen[n.ID].ForEachAnd(changed, fill)
		} else {
			sp.kill[n.ID].ForEachAndNotAnd(sp.gen[n.ID], changed, fill)
		}
	}

	bits := sp.bitList[:0]
	changed.ForEach(func(b int) { bits = append(bits, int32(b)) })
	sp.bitList = bits

	if sp.touchStamp == nil {
		sp.touchStamp = make([]uint32, s.g.NumNodes())
	}
	sp.touchEpoch++
	if sp.touchEpoch == 0 {
		for i := range sp.touchStamp {
			sp.touchStamp[i] = 0
		}
		sp.touchEpoch = 1
	}
	touched := s.touched[:0]
	touch := func(id cfg.NodeID) {
		if sp.touchStamp[id] != sp.touchEpoch {
			sp.touchStamp[id] = sp.touchEpoch
			touched = append(touched, id)
		}
	}

	st := sparseRunStats{}
	vecOps := 0
	cancelled := false
	for _, bb := range bits {
		b := int(bb)
		// Reset the bit's column to the background value. The
		// boundary needs no special case: the forward background 0
		// matches Start's all-zeros entry, the backward background
		// 1 matches End's all-ones exit, and the per-bit solvers
		// never overwrite either.
		if s.forward {
			for _, n := range s.order {
				c := s.res.In[n.ID].ClearChanged(b)
				if s.res.Out[n.ID].ClearChanged(b) {
					c = true
				}
				if c {
					touch(n.ID)
				}
			}
		} else {
			for _, n := range s.order {
				c := s.res.In[n.ID].SetChanged(b)
				if s.res.Out[n.ID].SetChanged(b) {
					c = true
				}
				if c {
					touch(n.ID)
				}
			}
		}
		vecOps += 2

		s0 := int32(0)
		if b > 0 {
			s0 = off[b-1]
		}
		if seeds := sp.seedNodes[s0:off[b]]; len(seeds) > 0 {
			sp.bumpEpoch()
			if s.forward {
				s.sparseForwardBit(b, seeds, &st)
			} else {
				s.sparseBackwardBit(b, seeds, &st)
			}
			for _, id := range sp.region {
				touch(cfg.NodeID(id))
			}
		}
		if s.cancel != nil && st.visits >= st.nextCancel {
			st.nextCancel = st.visits + cancelCheckStride
			if s.cancel() {
				cancelled = true
				break
			}
		}
	}
	s.touched = touched

	passes := 0
	if len(bits) > 0 {
		passes = 1
	}
	s.res.Stats = SolverStats{
		NodeVisits:       st.visits,
		Passes:           passes,
		MaxWorklistDepth: st.maxDepth,
		Pushes:           st.pushes,
		VecOps:           vecOps,
		Sparse:           true,
		Cancelled:        cancelled,
	}
	s.res.Touched = touched
	s.solved = !cancelled
	if cancelled {
		// A partial delta rewrite guarantees nothing about any
		// column; the next solve restarts from scratch.
		s.res.Touched = nil
	}
	s.flush(obs.SolveIncremental)
	return &s.res
}

// solveSparse runs the sparse engine for a full solve. It is also the
// incremental path: frontiers are re-derived from the problem's
// current gen/kill sites, so changed blocks are re-seeded by
// construction.
func (s *Solver) solveSparse(kind obs.SolveKind) *Result {
	sp := s.ensureSparse()
	bitsN := s.p.Bits()
	s.res.Touched = nil

	// Gather gen/kill per node once — problems may rebuild their
	// vectors between solves.
	for _, n := range s.order {
		sp.gen[n.ID], sp.kill[n.ID] = s.gk.GenKill(n)
	}

	// Background fill over the reachable nodes (the only ones either
	// engine visits): forward problems sit on an all-zeros background
	// and raise bits, backward ones on all-ones and lower them.
	vecOps := 0
	for _, n := range s.order {
		if s.forward {
			s.res.In[n.ID].ClearAll()
			s.res.Out[n.ID].ClearAll()
		} else {
			s.res.In[n.ID].SetAll()
			s.res.Out[n.ID].SetAll()
		}
		vecOps += 2
	}
	s.applyBoundary()

	// Bucket seed sites by bit: gen sites forward, kill&^gen sites
	// backward (kill without regeneration is what forces a zero).
	off := sp.seedOff
	for i := range off {
		off[i] = 0
	}
	total := 0
	for _, n := range s.order {
		count := func(b int) { off[b+1]++; total++ }
		if s.forward {
			sp.gen[n.ID].ForEach(count)
		} else {
			sp.kill[n.ID].ForEachAndNot(sp.gen[n.ID], count)
		}
	}
	for b := 1; b <= bitsN; b++ {
		off[b] += off[b-1]
	}
	if cap(sp.seedNodes) < total {
		sp.seedNodes = make([]int32, total)
	}
	sp.seedNodes = sp.seedNodes[:total]
	for _, n := range s.order {
		id := int32(n.ID)
		fill := func(b int) { sp.seedNodes[off[b]] = id; off[b]++ }
		if s.forward {
			sp.gen[n.ID].ForEach(fill)
		} else {
			sp.kill[n.ID].ForEachAndNot(sp.gen[n.ID], fill)
		}
	}
	// After filling, off[b] is the END of bucket b; bucket b starts
	// at off[b-1] (0 for b == 0).

	st := sparseRunStats{}
	cancelled := false
	start := off[0] - off[0] // 0, kept for symmetry
	for b := 0; b < bitsN; b++ {
		end := off[b]
		if start == end {
			start = end
			continue
		}
		seeds := sp.seedNodes[start:end]
		start = end

		sp.bumpEpoch()

		if s.forward {
			s.sparseForwardBit(b, seeds, &st)
		} else {
			s.sparseBackwardBit(b, seeds, &st)
		}
		if s.cancel != nil && st.visits >= st.nextCancel {
			st.nextCancel = st.visits + cancelCheckStride
			if s.cancel() {
				cancelled = true
				break
			}
		}
	}

	passes := 0
	if st.visits > 0 || total > 0 {
		passes = 1
	}
	s.res.Stats = SolverStats{
		NodeVisits:       st.visits,
		Passes:           passes,
		MaxWorklistDepth: st.maxDepth,
		Pushes:           st.pushes,
		VecOps:           vecOps,
		Sparse:           true,
		Cancelled:        cancelled,
	}
	// A cancelled sparse solution is partial — some bits never ran —
	// so it must be discarded exactly like a cancelled dense solve:
	// the solver re-solves in full on its next use.
	s.solved = !cancelled
	s.flush(kind)
	return &s.res
}

// sparseRunStats accumulates work counters across the per-bit solves.
type sparseRunStats struct {
	visits, pushes, maxDepth int
	nextCancel               int
}

func (st *sparseRunStats) visit() {
	st.visits++
	faultinject.Fire(faultinject.SolverVisit, nil)
}

func (st *sparseRunStats) depth(d int) {
	if d > st.maxDepth {
		st.maxDepth = d
	}
}

// sparseForwardBit solves one bit of a forward problem (see the
// three-phase scheme in the type comment).
func (s *Solver) sparseForwardBit(b int, seeds []int32, st *sparseRunStats) {
	sp := s.sp
	startID := int32(s.g.Start.ID)

	// Phase 1: flood the possible-1 region forward from the gen
	// sites. Mark all seeds' Outs before draining so the kill check
	// below never suppresses a gen site.
	stack := sp.stack[:0]
	for _, id := range seeds {
		if f := sp.enter(id); f&fOutPoss == 0 {
			sp.flags[id] = f | fOutPoss | fOutVal
			stack = append(stack, id)
			st.pushes++
		}
	}
	st.depth(len(stack))
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.visit()
		for _, m := range s.g.Node(cfg.NodeID(id)).Succs() {
			mid := int32(m.ID)
			f := sp.enter(mid)
			nf := f | fInPoss | fInVal
			if f&fOutPoss == 0 && !sp.kill[mid].Get(b) {
				nf |= fOutPoss | fOutVal
				stack = append(stack, mid)
				st.pushes++
				st.depth(len(stack))
			}
			sp.flags[mid] = nf
		}
	}

	// Phase 2: kill the over-approximation. In is truly 1 only if
	// EVERY predecessor's Out can be 1 (intersect meet); Start's In
	// is the all-zeros boundary. Zeros cascade: In falling drops Out
	// (unless gen), and a dropped Out re-examines successors.
	fall := sp.fall[:0]
	lower := func(id int32) {
		f := sp.flags[id]
		if f&fInVal == 0 {
			return
		}
		f &^= fInVal
		if f&fOutVal != 0 && !sp.gen[id].Get(b) {
			f &^= fOutVal
			fall = append(fall, id)
			st.pushes++
			st.depth(len(fall))
		}
		sp.flags[id] = f
	}
	for _, id := range sp.region {
		if sp.flags[id]&fInPoss == 0 {
			continue
		}
		if id == startID {
			lower(id)
			continue
		}
		for _, p := range s.g.Node(cfg.NodeID(id)).Preds() {
			if sp.peek(int32(p.ID))&fOutPoss == 0 {
				lower(id)
				break
			}
		}
	}
	for len(fall) > 0 {
		id := fall[len(fall)-1]
		fall = fall[:len(fall)-1]
		st.visit()
		for _, m := range s.g.Node(cfg.NodeID(id)).Succs() {
			if sp.peek(int32(m.ID))&fInVal != 0 {
				lower(int32(m.ID))
			}
		}
	}

	// Phase 3: write the survivors onto the all-zeros background.
	for _, id := range sp.region {
		f := sp.flags[id]
		if f&fInVal != 0 {
			s.res.In[id].Set(b)
		}
		if f&fOutVal != 0 {
			s.res.Out[id].Set(b)
		}
	}
	sp.stack, sp.fall = stack[:0], fall[:0]
}

// sparseBackwardBit solves one bit of a backward problem by direct
// zero propagation (see the type comment).
func (s *Solver) sparseBackwardBit(b int, seeds []int32, st *sparseRunStats) {
	sp := s.sp
	endID := int32(s.g.End.ID)

	stack := sp.stack[:0]
	for _, id := range seeds {
		if f := sp.enter(id); f&bInZero == 0 {
			sp.flags[id] = f | bInZero
			stack = append(stack, id)
			st.pushes++
		}
	}
	st.depth(len(stack))
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.visit()
		for _, p := range s.g.Node(cfg.NodeID(id)).Preds() {
			pid := int32(p.ID)
			if pid == endID {
				continue // End's Out is the all-ones boundary
			}
			f := sp.enter(pid)
			if f&bOutZero != 0 {
				continue
			}
			f |= bOutZero
			// In(p) = (Out(p) &^ kill) | gen = gen when Out
			// is 0: the zero continues unless p regenerates.
			if f&bInZero == 0 && !sp.gen[pid].Get(b) {
				f |= bInZero
				stack = append(stack, pid)
				st.pushes++
				st.depth(len(stack))
			}
			sp.flags[pid] = f
		}
	}

	for _, id := range sp.region {
		f := sp.flags[id]
		if f&bInZero != 0 {
			s.res.In[id].Clear(b)
		}
		if f&bOutZero != 0 {
			s.res.Out[id].Clear(b)
		}
	}
	sp.stack = stack[:0]
}
