package dataflow

import (
	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// FlatProgram is an instruction-level view of a flow graph: every
// statement becomes one instruction, and a block without statements
// contributes a single implicit skip so that every block has an entry
// and an exit instruction. The faint-variable analysis requires this
// granularity (Table 1 works at the instruction level; its footnote b
// notes only the dead analysis can be lifted to blocks).
type FlatProgram struct {
	Graph  *cfg.Graph
	Instrs []FlatInstr

	// entry[id] and exit[id] are the first and last instruction
	// indices of each block.
	entry, exit []int
}

// FlatInstr is one instruction with its location and flow successors
// and predecessors (instruction indices).
type FlatInstr struct {
	Node  *cfg.Node
	Index int // statement index within the node; -1 for implicit skip
	Stmt  ir.Stmt

	Succs []int
	Preds []int
}

// Flatten builds the instruction-level view of g.
func Flatten(g *cfg.Graph) *FlatProgram {
	fp := &FlatProgram{
		Graph: g,
		entry: make([]int, g.NumNodes()),
		exit:  make([]int, g.NumNodes()),
	}
	for _, n := range g.Nodes() {
		fp.entry[n.ID] = len(fp.Instrs)
		if n.IsEmpty() {
			fp.Instrs = append(fp.Instrs, FlatInstr{Node: n, Index: -1, Stmt: ir.Skip{}})
		} else {
			for i, s := range n.Stmts {
				fp.Instrs = append(fp.Instrs, FlatInstr{Node: n, Index: i, Stmt: s})
			}
		}
		fp.exit[n.ID] = len(fp.Instrs) - 1
	}
	// Chain instructions within blocks and across edges.
	for _, n := range g.Nodes() {
		for idx := fp.entry[n.ID]; idx < fp.exit[n.ID]; idx++ {
			fp.link(idx, idx+1)
		}
		last := fp.exit[n.ID]
		for _, s := range n.Succs() {
			fp.link(last, fp.entry[s.ID])
		}
	}
	return fp
}

func (fp *FlatProgram) link(from, to int) {
	fp.Instrs[from].Succs = append(fp.Instrs[from].Succs, to)
	fp.Instrs[to].Preds = append(fp.Instrs[to].Preds, from)
}

// Len returns the number of instructions.
func (fp *FlatProgram) Len() int { return len(fp.Instrs) }

// BlockEntry returns the index of the first instruction of n.
func (fp *FlatProgram) BlockEntry(n *cfg.Node) int { return fp.entry[n.ID] }

// BlockExit returns the index of the last instruction of n.
func (fp *FlatProgram) BlockExit(n *cfg.Node) int { return fp.exit[n.ID] }
