package chaos

import (
	"fmt"
	"testing"
)

// TestChaosSmoke is the fixed-seed schedule wired into `make
// chaos-smoke` (and `make ci`): one reproducible 40-round run, cheap
// enough for every CI pass.
func TestChaosSmoke(t *testing.T) {
	Run(t, Config{Seed: 7, Replicas: 3, Rounds: 40})
}

// TestChaosRandomized is the acceptance sweep: 200 schedule rounds
// across distinct seeds, each round a submission burst plus a fault
// (crash with torn WAL tail, interrupted drain, transport drops,
// solver stalls). Every run must end with all acknowledged jobs
// completed byte-identically and no goroutines leaked.
func TestChaosRandomized(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			Run(t, Config{Seed: seed, Replicas: 3, Rounds: 50})
		})
	}
}

// TestChaosStoreSmoke is the fixed-seed schedule with the shared L2
// store and cluster leases in play, wired into `make smoke-store`:
// store outages, slow backends, and lease owners crashing mid-solve
// join the fault deck, and the invariants must not move — acked jobs
// complete byte-identically with zero caller-visible store errors.
func TestChaosStoreSmoke(t *testing.T) {
	Run(t, Config{Seed: 11, Replicas: 3, Rounds: 40, Store: true})
}

// TestChaosStoreRandomized is the store dimension's acceptance sweep:
// 200 schedule rounds across distinct seeds on a 4-replica fleet, all
// sharing one flaky backend. An expired lease must never lose or
// duplicate an acked job's result.
func TestChaosStoreRandomized(t *testing.T) {
	seeds := []int64{21, 22, 23, 24}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			Run(t, Config{Seed: seed, Replicas: 4, Rounds: 50, Store: true})
		})
	}
}
