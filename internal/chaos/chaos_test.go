package chaos

import (
	"fmt"
	"testing"
)

// TestChaosSmoke is the fixed-seed schedule wired into `make
// chaos-smoke` (and `make ci`): one reproducible 40-round run, cheap
// enough for every CI pass.
func TestChaosSmoke(t *testing.T) {
	Run(t, Config{Seed: 7, Replicas: 3, Rounds: 40})
}

// TestChaosRandomized is the acceptance sweep: 200 schedule rounds
// across distinct seeds, each round a submission burst plus a fault
// (crash with torn WAL tail, interrupted drain, transport drops,
// solver stalls). Every run must end with all acknowledged jobs
// completed byte-identically and no goroutines leaked.
func TestChaosRandomized(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			Run(t, Config{Seed: seed, Replicas: 3, Rounds: 50})
		})
	}
}
