// Package chaos is the cluster fault-injection harness: it runs a
// multi-replica pdced cluster fully in-process — replicas behind a
// pdce.Pool, connected by an in-memory transport — and drives it
// through seed-reproducible randomized fault schedules: replica
// crashes (WAL truncated to its durable prefix plus a random partial
// tail, the shape a real power cut leaves), graceful drains
// interrupted mid-run, solver stalls, and transport drops.
//
// After every schedule the cluster is healed and the harness asserts
// the serving stack's end-to-end contract:
//
//   - No acknowledged job is lost: every submission that received a
//     202 receipt reaches the done state on its accepting replica.
//   - Results are byte-identical to a fault-free reference server —
//     the optimizer's determinism (Theorem 3.7) must survive crash
//     replay, retry, and recomputation.
//   - No duplicate visible completions: repeated polls of one job
//     return the same bytes.
//   - No goroutine leaks once the cluster is shut down.
//
// The schedules are deterministic in Config.Seed (modulo goroutine
// interleaving), so a failing run's seed reproduces its fault
// sequence.
package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdce"
	"pdce/internal/faultinject"
	"pdce/internal/server"
	"pdce/internal/store"
)

// flakyBackend wraps the shared store with schedulable faults: a full
// outage (every call errors — a dead blobd) and a slow mode (every
// call sleeps — a saturated disk or a congested network).
type flakyBackend struct {
	inner  store.Backend
	outage atomic.Bool
	delay  atomic.Int64 // per-call sleep, ns
}

var errStoreDown = fmt.Errorf("chaos: store backend down")

func (f *flakyBackend) gate() error {
	if d := f.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if f.outage.Load() {
		return errStoreDown
	}
	return nil
}

func (f *flakyBackend) Put(key string, body []byte) (bool, error) {
	if err := f.gate(); err != nil {
		return false, err
	}
	return f.inner.Put(key, body)
}

func (f *flakyBackend) Get(key string) ([]byte, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.Get(key)
}

func (f *flakyBackend) Has(key string) (bool, error) {
	if err := f.gate(); err != nil {
		return false, err
	}
	return f.inner.Has(key)
}

func (f *flakyBackend) Delete(key string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Delete(key)
}

func (f *flakyBackend) Stats() (store.Stats, error) {
	if err := f.gate(); err != nil {
		return store.Stats{}, err
	}
	return f.inner.Stats()
}

// Config sizes one chaos run.
type Config struct {
	// Seed fixes the fault schedule; runs with the same seed inject
	// the same fault sequence.
	Seed int64
	// Replicas is the cluster size (default 3); Rounds the number of
	// schedule steps (default 40), each a submission burst plus at most
	// one fault.
	Replicas int
	Rounds   int
	// Store wires every replica to one shared L2 blob store (with
	// cluster solve leases on a short TTL) and adds store faults to the
	// schedule: full backend outages, slow backends, and lease owners
	// crashing mid-solve. The invariants do not change — the L2 tier
	// must degrade to local solving with zero caller-visible errors.
	Store bool
}

// replica is one cluster member: a server plus its lifecycle state.
// Its queue directory outlives restarts — that persistence is the
// thing under test.
type replica struct {
	mu    sync.Mutex
	base  string
	dir   string
	srv   *server.Server
	hnd   http.Handler
	alive bool
}

func (r *replica) handler() (http.Handler, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hnd, r.alive
}

// transport is the in-memory wire: it maps fake hosts (r0, r1, ...) to
// replica handlers, so the cluster needs no TCP ports and a "crash"
// is a flag flip, not a process kill. Requests to dead replicas — and
// a configurable fraction of requests to live ones — fail with
// transport errors, which is exactly what pdce.Pool's failover
// machinery must absorb.
type transport struct {
	mu    sync.Mutex
	reps  map[string]*replica
	drop  map[string]float64
	rng   *rand.Rand
	stall *atomic.Int64 // solver stall per visit, shared with the hook
}

func (tr *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	tr.mu.Lock()
	r := tr.reps[req.URL.Host]
	drop := tr.drop[req.URL.Host]
	roll := tr.rng.Float64()
	tr.mu.Unlock()
	if r == nil {
		return nil, fmt.Errorf("chaos: unknown host %q", req.URL.Host)
	}
	hnd, alive := r.handler()
	if !alive {
		return nil, fmt.Errorf("chaos: connection refused (%s is down)", req.URL.Host)
	}
	if roll < drop {
		return nil, fmt.Errorf("chaos: connection reset (%s dropping)", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	hnd.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

func (tr *transport) setDrop(host string, p float64) {
	tr.mu.Lock()
	tr.drop[host] = p
	tr.mu.Unlock()
}

func (tr *transport) clearDrops() {
	tr.mu.Lock()
	tr.drop = make(map[string]float64)
	tr.mu.Unlock()
}

// receipt is one acknowledged (202) submission: the durability promise
// the harness holds the cluster to.
type receipt struct {
	id      string
	name    string
	source  string
	replica string
}

// harness is one chaos run's state.
type harness struct {
	t     *testing.T
	cfg   Config
	rng   *rand.Rand
	tr    *transport
	pool  *pdce.Pool
	reps  []*replica
	stall atomic.Int64
	flaky *flakyBackend // nil unless Config.Store

	acked map[string]receipt // key: replica + "/" + id
	order []string
}

// Run executes one chaos schedule and its invariant checks.
func Run(t *testing.T, cfg Config) {
	t.Helper()
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 40
	}
	baseline := runtime.NumGoroutine()

	h := &harness{
		t:     t,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		acked: make(map[string]receipt),
	}
	h.tr = &transport{
		reps:  make(map[string]*replica),
		drop:  make(map[string]float64),
		rng:   rand.New(rand.NewSource(cfg.Seed + 1)),
		stall: &h.stall,
	}
	if cfg.Store {
		h.flaky = &flakyBackend{inner: store.NewMemStore()}
	}
	restoreHook := faultinject.Set(func(p faultinject.Point, _ any) {
		if p == faultinject.SolverVisit {
			if d := h.stall.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		}
	})
	defer restoreHook()

	for i := 0; i < cfg.Replicas; i++ {
		r := &replica{
			base: fmt.Sprintf("http://r%d", i),
			dir:  filepath.Join(t.TempDir(), fmt.Sprintf("r%d", i)),
		}
		h.boot(r)
		h.tr.reps[fmt.Sprintf("r%d", i)] = r
		h.reps = append(h.reps, r)
	}
	bases := make([]string, len(h.reps))
	for i, r := range h.reps {
		bases[i] = r.base
	}
	pool, err := pdce.NewPool(bases, pdce.PoolOptions{
		HTTPClient:    &http.Client{Transport: h.tr},
		ProbeInterval: -1, // probes are driven by the schedule, not a ticker
		Seed:          cfg.Seed + 2,
		Retry: pdce.RetryPolicy{
			MaxAttempts: 4,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.pool = pool

	for round := 0; round < cfg.Rounds; round++ {
		h.submitBurst()
		h.fault(round)
		if h.aliveCount() == 0 {
			h.restartOneDead()
		}
	}

	h.heal()
	h.verify()
	h.shutdown()
	h.checkGoroutines(baseline)
}

// replicaConfig is every replica's server config: a durable queue with
// fast retries, no request deadline (stalls must slow jobs down, not
// degrade them — degraded results are legitimately non-identical), and
// a small cache that does not survive restarts, forcing post-crash
// recomputation through the deterministic optimizer. With the store
// dimension on, every replica shares the run's flaky L2 backend on a
// short lease TTL, so a lease owner crashing mid-solve is reclaimed
// within a few schedule rounds.
func (h *harness) replicaConfig(dir string) server.Config {
	cfg := server.Config{
		QueueDir:     dir,
		QueueWorkers: 2,
		QueueBackoff: time.Millisecond,
		CacheEntries: 256,
	}
	if h.flaky != nil {
		cfg.Store = h.flaky
		cfg.LeaseTTL = 50 * time.Millisecond
	}
	return cfg
}

// boot starts (or restarts) a replica on its persistent queue dir.
func (h *harness) boot(r *replica) {
	srv, err := server.New(h.replicaConfig(r.dir))
	if err != nil {
		h.t.Fatalf("boot %s: %v", r.base, err)
	}
	r.mu.Lock()
	r.srv = srv
	r.hnd = srv.Handler()
	r.alive = true
	r.mu.Unlock()
}

// crash kills a replica the hard way: the transport refuses new
// connections, the queue is killed without a final sync, and the WAL
// is truncated to its durable prefix plus a random slice of the
// unsynced tail — the torn shape a real crash leaves on disk.
func (h *harness) crash(r *replica) {
	r.mu.Lock()
	if !r.alive {
		r.mu.Unlock()
		return
	}
	srv := r.srv
	r.alive = false
	r.srv = nil
	r.hnd = nil
	r.mu.Unlock()

	q := srv.Queue()
	q.Kill()
	// Everything fsync'd survives; of the unsynced tail, a random
	// prefix "reached the disk" before the power went.
	synced := q.WALSyncedSize()
	path := q.WALPath()
	if st, err := os.Stat(path); err == nil && st.Size() > synced {
		keep := synced + h.rng.Int63n(st.Size()-synced+1)
		if err := os.Truncate(path, keep); err != nil {
			h.t.Fatalf("crash truncate %s: %v", r.base, err)
		}
	}
}

// drain stops a replica gracefully with a tight deadline: a schedule
// step, not a leisurely shutdown — when running jobs don't finish in
// time the drain degenerates into a kill, which recovery must also
// absorb.
func (h *harness) drain(r *replica) {
	r.mu.Lock()
	if !r.alive {
		r.mu.Unlock()
		return
	}
	srv := r.srv
	r.alive = false
	r.srv = nil
	r.hnd = nil
	r.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	srv.Drain(ctx) // an interrupted drain killed the queue; both shapes are valid here
}

func (h *harness) aliveCount() int {
	n := 0
	for _, r := range h.reps {
		if _, alive := r.handler(); alive {
			n++
		}
	}
	return n
}

func (h *harness) restartOneDead() {
	for _, r := range h.reps {
		if _, alive := r.handler(); !alive {
			h.boot(r)
			h.pool.Probe()
			return
		}
	}
}

// program returns corpus entry i: tiny WHILE programs with partially
// dead assignments, distinct per index so content addresses differ.
func program(i int) (name, source string) {
	name = fmt.Sprintf("chaos-%02d", i)
	source = fmt.Sprintf(
		"x := %d\ny := x + %d\nif * {\n    y := %d\n}\nout(x + y)\n",
		i%7+1, i%5+2, i%3+1)
	return
}

const corpusSize = 24

// submitBurst submits a few corpus programs through the pool. Only
// 202 receipts become tracked obligations; submissions the cluster
// refused (everything down, budget exhausted) are legitimate failures
// under chaos and carry no promise.
func (h *harness) submitBurst() {
	n := 1 + h.rng.Intn(2)
	for i := 0; i < n; i++ {
		name, source := program(h.rng.Intn(corpusSize))
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		resp, replicaURL, err := h.pool.Submit(ctx, name, source, pdce.RequestOptions{})
		cancel()
		if err != nil || resp.Cached {
			// Refused, or served straight from cache: no durability
			// promise was made.
			continue
		}
		key := replicaURL + "/" + resp.ID
		if _, ok := h.acked[key]; !ok {
			h.acked[key] = receipt{id: resp.ID, name: name, source: source, replica: replicaURL}
			h.order = append(h.order, key)
		}
	}
}

// fault applies this round's scheduled fault, if any. The store
// dimension (cases 10-12) exists only when Config.Store is set, so
// store-less runs keep their historical schedules per seed.
func (h *harness) fault(round int) {
	r := h.reps[h.rng.Intn(len(h.reps))]
	sides := 10
	if h.flaky != nil {
		sides = 13
	}
	switch h.rng.Intn(sides) {
	case 0, 1:
		h.crash(r)
	case 2:
		h.drain(r)
	case 3:
		if _, alive := r.handler(); !alive {
			h.boot(r)
			h.pool.Probe()
		}
	case 4:
		h.tr.setDrop(strings.TrimPrefix(r.base, "http://"), 0.3+0.4*h.rng.Float64())
	case 5:
		h.tr.clearDrops()
	case 6:
		// Solver stall: every node visit sleeps, so jobs are slow but
		// not degraded (replicas run without deadlines).
		h.stall.Store(int64(time.Duration(h.rng.Intn(2)+1) * time.Millisecond))
	case 7:
		h.stall.Store(0)
	case 10:
		// Full store outage: every L2 get, put, and lease call errors.
		// Replicas must keep answering from L1 and local solves.
		h.flaky.outage.Store(true)
	case 11:
		// Slow store: lease polls and fetches crawl, but nothing errors.
		h.flaky.delay.Store(int64(time.Duration(h.rng.Intn(2)+1) * time.Millisecond))
	case 12:
		// Store heals.
		h.flaky.outage.Store(false)
		h.flaky.delay.Store(0)
	default:
		// Quiet round.
	}
	_ = round
}

// heal returns the cluster to full health: faults cleared, every dead
// replica rebooted on its surviving queue directory.
func (h *harness) heal() {
	h.stall.Store(0)
	h.tr.clearDrops()
	if h.flaky != nil {
		h.flaky.outage.Store(false)
		h.flaky.delay.Store(0)
	}
	for _, r := range h.reps {
		if _, alive := r.handler(); !alive {
			h.boot(r)
		}
	}
	h.pool.Probe()
}

// verify holds the healed cluster to its promises: every 202'd job
// completes on its accepting replica, byte-identical to the fault-free
// reference server, and stays byte-identical across repeated polls.
func (h *harness) verify() {
	oracleSrv, err := server.New(server.Config{})
	if err != nil {
		h.t.Fatal(err)
	}
	oracle := httptest.NewServer(oracleSrv.Handler())
	defer oracle.Close()
	defer oracleSrv.Drain(context.Background())

	reference := make(map[string][]byte)
	ref := func(rc receipt) []byte {
		if b, ok := reference[rc.id]; ok {
			return b
		}
		resp, err := http.Post(oracle.URL+"/optimize?name="+rc.name, "text/plain",
			strings.NewReader(rc.source))
		if err != nil {
			h.t.Fatalf("oracle %s: %v", rc.name, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			h.t.Fatalf("oracle %s: %d %s", rc.name, resp.StatusCode, body)
		}
		reference[rc.id] = body
		return body
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, key := range h.order {
		rc := h.acked[key]
		res, err := h.pool.PollResult(ctx, rc.replica, rc.id, time.Millisecond)
		if err != nil {
			h.t.Fatalf("acked job %s on %s never completed: %v", rc.id, rc.replica, err)
		}
		if res.State != pdce.JobDone {
			h.t.Fatalf("acked job %s on %s: state %q error %q", rc.id, rc.replica, res.State, res.Error)
		}
		want := ref(rc)
		if string(res.Result) != string(want) {
			h.t.Fatalf("job %s on %s: result diverged from reference\ngot:  %s\nwant: %s",
				rc.id, rc.replica, res.Result, want)
		}
		// Exactly-once-visible: a second poll returns the same bytes.
		res2, err := h.pool.PollResult(ctx, rc.replica, rc.id, time.Millisecond)
		if err != nil || string(res2.Result) != string(res.Result) {
			h.t.Fatalf("job %s on %s: repeated poll diverged (err %v)", rc.id, rc.replica, err)
		}
		// Trace identity is durable: the trace id rides the WAL submit
		// record, so even a job replayed after a crash must still
		// report the trace it was born into.
		if res.TraceID == "" {
			h.t.Fatalf("job %s on %s: completed without a trace id", rc.id, rc.replica)
		}
		h.checkTrace(rc, res.TraceID)
	}
	if len(h.order) == 0 {
		h.t.Fatal("chaos run acknowledged no submissions; the schedule tested nothing")
	}
}

// checkTrace asserts the crash-recovery tracing contract for one
// acked job. The trace id itself is durable (it rides the WAL submit
// record); the span store is in-memory, so the trace body is only
// retrievable when the job executed after the replica's latest boot.
// When it is retrievable and the execution was a WAL replay, the
// execute root must link back to the pre-crash enqueue span.
func (h *harness) checkTrace(rc receipt, traceID string) {
	cl := &http.Client{Transport: h.tr}
	resp, err := cl.Get(rc.replica + "/debug/traces/" + traceID)
	if err != nil {
		h.t.Fatalf("job %s: fetch trace %s: %v", rc.id, traceID, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusNotFound {
		// The span bodies died with the crashed process's memory, or
		// eviction took them; only the id's durability is guaranteed.
		return
	}
	if resp.StatusCode != http.StatusOK {
		h.t.Fatalf("job %s: trace %s: %d %s", rc.id, traceID, resp.StatusCode, body)
	}
	var dump pdce.TraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		h.t.Fatalf("job %s: trace %s: %v", rc.id, traceID, err)
	}
	for _, sp := range dump.Spans {
		if sp.TraceID != traceID {
			h.t.Fatalf("job %s: span %s carries trace %s, want %s", rc.id, sp.SpanID, sp.TraceID, traceID)
		}
		if sp.Name == "queue.execute" && sp.Attrs["replayed"] == "true" {
			if sp.LinkTraceID != traceID || sp.LinkSpanID == "" {
				h.t.Fatalf("job %s: replayed execute span lost its restart link: %+v", rc.id, sp)
			}
		}
	}
}

// shutdown stops the pool and drains every replica cleanly.
func (h *harness) shutdown() {
	h.pool.Close()
	for _, r := range h.reps {
		r.mu.Lock()
		srv := r.srv
		r.alive = false
		r.mu.Unlock()
		if srv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			srv.Drain(ctx)
			cancel()
		}
	}
}

// checkGoroutines asserts the run leaked nothing once the cluster is
// down, with a settle loop for goroutines still unwinding.
func (h *harness) checkGoroutines(baseline int) {
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			h.t.Fatalf("goroutine leak: %d at start, %d after shutdown\n%s", baseline, n, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
