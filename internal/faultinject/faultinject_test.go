package faultinject

import (
	"sync"
	"testing"
)

func TestFireWithoutHookIsNoop(t *testing.T) {
	if Enabled() {
		t.Fatal("no hook installed, Enabled() = true")
	}
	Fire(SolverVisit, nil) // must not panic
}

func TestSetFireRestore(t *testing.T) {
	var got []Point
	restore := Set(func(p Point, payload any) {
		got = append(got, p)
		if payload != "payload" {
			t.Errorf("payload = %v, want %q", payload, "payload")
		}
	})
	if !Enabled() {
		t.Fatal("hook installed, Enabled() = false")
	}
	Fire(BatchJob, "payload")
	Fire(SinkPhase, "payload")
	restore()
	if Enabled() {
		t.Fatal("restore left a hook installed")
	}
	Fire(BatchJob, "ignored")
	if len(got) != 2 || got[0] != BatchJob || got[1] != SinkPhase {
		t.Fatalf("hook saw %v, want [BatchJob SinkPhase]", got)
	}
}

func TestSetRestoresPreviousHook(t *testing.T) {
	hits := 0
	outer := Set(func(Point, any) { hits += 100 })
	inner := Set(func(Point, any) { hits++ })
	Fire(SolverVisit, nil)
	inner()
	Fire(SolverVisit, nil)
	outer()
	if hits != 101 {
		t.Fatalf("hits = %d, want 101 (inner once, outer once)", hits)
	}
}

// TestConcurrentFire runs Fire from many goroutines while the hook is
// installed — the seam itself must be race-free (the batch pool fires
// it from every worker).
func TestConcurrentFire(t *testing.T) {
	var mu sync.Mutex
	count := 0
	defer Set(func(Point, any) {
		mu.Lock()
		count++
		mu.Unlock()
	})()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				Fire(BatchJob, "x")
			}
		}()
	}
	wg.Wait()
	if count != 800 {
		t.Fatalf("count = %d, want 800", count)
	}
}
