// Package faultinject is the optimizer's fault-injection seam: a
// process-global hook consulted at a small number of instrumented
// points inside the solver, the driver's phases, and the batch worker
// pool. Production runs never install a hook, so the only cost is one
// atomic nil-check per site; tests install hooks that panic, stall, or
// deliberately miscompile to exercise the containment machinery
// (pdce.SafeOptimize's panic recovery, the fixpoint watchdog, and
// verified-mode rollback) under `go test -race`.
//
// The hook is intentionally a single global rather than a per-run
// option: faults in production come from anywhere — a corrupted
// pattern-table entry, a miscompiled dependency — and the containment
// layer must not rely on cooperative plumbing to see them. Keeping the
// seam global means the injected fault crosses the same API boundaries
// a real one would.
package faultinject

import "sync/atomic"

// Point identifies an instrumented site.
type Point string

// Instrumented sites. The payload passed to the hook is listed per
// point; hooks must treat it as shared state and synchronize any
// mutation themselves.
const (
	// SolverVisit fires on every node visit of the block-level
	// worklist solver. Payload: nil. Stalling here exercises the
	// watchdog mid-solve.
	SolverVisit Point = "dataflow/solver-visit"
	// EliminatePhase fires at the start of every elimination phase.
	// Payload: the working *cfg.Graph.
	EliminatePhase Point = "core/eliminate"
	// SinkPhase fires after every sinking phase has mutated the
	// graph, before the round's verification check. Payload: the
	// working *cfg.Graph — a hook that corrupts it simulates a
	// miscompile for verified mode to catch.
	SinkPhase Point = "core/sink"
	// BatchJob fires in a worker goroutine before a batch job runs.
	// Payload: the job name (string). Panicking here exercises the
	// pool's per-job containment.
	BatchJob Point = "batch/job"
	// ServerRequest fires inside an admitted optimize request of the
	// serving layer, after the admission slot is held and before the
	// optimizer runs. Payload: the program name (string). Stalling
	// here keeps the slot busy, filling the queue behind it — the seam
	// for queue-saturation and graceful-drain tests.
	ServerRequest Point = "server/request"
	// ServerCacheLoad fires after a disk-spilled cache entry is read
	// back, before its checksum is verified. Payload: *[]byte (the
	// entry body) — a hook that flips bytes simulates on-disk
	// corruption, which the cache must detect, quarantine, and treat
	// as a miss rather than serve.
	ServerCacheLoad Point = "server/cache-load"
	// ClientDial fires in pdce.Pool immediately before one attempt is
	// sent to one replica. Payload: the replica base URL (string).
	// Stalling here simulates a slow network path to that replica —
	// the seam for hedging and failover-latency tests.
	ClientDial Point = "client/dial"
	// ClientHedge fires when pdce.Pool launches a hedged second
	// request after the hedge delay elapsed without a primary
	// response. Payload: the hedge replica's base URL (string).
	ClientHedge Point = "client/hedge"
	// QueueAppend fires in the durable job queue's write-ahead log
	// immediately before one encoded record is written. Payload:
	// *[]byte (the framed record) — a hook that truncates the slice
	// simulates a torn write reaching only part of the record, and a
	// hook that panics simulates a crash mid-append.
	QueueAppend Point = "server/queue-append"
	// QueueFsync fires before the write-ahead log fsyncs an appended
	// record. Payload: *error — a hook that stores a non-nil error
	// simulates the fsync failing, which the queue must surface as a
	// failed (unacknowledged) submission, never a silently volatile
	// one.
	QueueFsync Point = "server/queue-fsync"
	// QueueRecover fires during write-ahead log replay for every
	// record read back, before its checksum is verified. Payload:
	// *[]byte (the record payload) — a hook that flips bytes simulates
	// on-disk corruption, which recovery must quarantine while
	// continuing to replay the records after it.
	QueueRecover Point = "server/queue-recover"
)

// Hook receives every fired point. It may panic (the containment layer
// must recover), sleep (the watchdog must expire), or mutate the
// payload (verified mode must roll back). It runs on optimizer
// goroutines, concurrently during batch runs, so it must be safe for
// concurrent use.
type Hook func(p Point, payload any)

var hook atomic.Pointer[Hook]

// Set installs h as the process-global hook (nil uninstalls) and
// returns a restore function reinstating the previous hook — use
// `defer faultinject.Set(h)()` in tests. Tests that install hooks must
// not run in parallel with each other.
func Set(h Hook) (restore func()) {
	var prev *Hook
	if h == nil {
		prev = hook.Swap(nil)
	} else {
		prev = hook.Swap(&h)
	}
	return func() { hook.Store(prev) }
}

// Enabled reports whether a hook is installed. Sites with non-trivial
// payload construction gate on it.
func Enabled() bool { return hook.Load() != nil }

// Fire consults the installed hook, if any. The fast path is one
// atomic load and a branch.
func Fire(p Point, payload any) {
	if h := hook.Load(); h != nil {
		(*h)(p, payload)
	}
}
