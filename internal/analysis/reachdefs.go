package analysis

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/dataflow"
	"pdce/internal/ir"
)

// ReachDefsResult holds instruction-level reaching definitions: for
// every flat instruction, which assignment occurrences may reach its
// entry. This is the substrate of the classic def-use-graph dead code
// elimination the paper compares complexities against (Section 5.2,
// references [2, 21, 30]).
type ReachDefsResult struct {
	Flat *dataflow.FlatProgram

	// Defs lists the flat indices of all assignment instructions;
	// bit k of the vectors below refers to Defs[k].
	Defs []int

	// DefBit maps a flat instruction index to its bit, or -1.
	DefBit []int

	// In[i] is the set of definitions reaching the entry of flat
	// instruction i.
	In []*bitvec.Vector

	// Visits counts instruction relaxations performed by the
	// worklist, for complexity reporting.
	Visits int
}

// ReachingDefs computes instruction-level reaching definitions of g.
func ReachingDefs(g *cfg.Graph) *ReachDefsResult {
	fp := dataflow.Flatten(g)
	r := &ReachDefsResult{
		Flat:   fp,
		DefBit: make([]int, fp.Len()),
	}
	for i := range r.DefBit {
		r.DefBit[i] = -1
	}
	for i, instr := range fp.Instrs {
		if _, ok := instr.Stmt.(ir.Assign); ok {
			r.DefBit[i] = len(r.Defs)
			r.Defs = append(r.Defs, i)
		}
	}
	nd := len(r.Defs)
	r.In = make([]*bitvec.Vector, fp.Len())
	out := make([]*bitvec.Vector, fp.Len())
	for i := range r.In {
		r.In[i] = bitvec.New(nd) // least solution: start empty
		out[i] = bitvec.New(nd)
	}

	// kill[k] for def k: all defs of the same variable.
	defsOfVar := make(map[ir.Var][]int)
	for k, i := range r.Defs {
		a := fp.Instrs[i].Stmt.(ir.Assign)
		defsOfVar[a.LHS] = append(defsOfVar[a.LHS], k)
	}
	killOf := func(i int) *bitvec.Vector {
		k := bitvec.New(nd)
		if a, ok := fp.Instrs[i].Stmt.(ir.Assign); ok {
			for _, d := range defsOfVar[a.LHS] {
				k.Set(d)
			}
		}
		return k
	}
	kills := make([]*bitvec.Vector, fp.Len())
	for i := range kills {
		kills[i] = killOf(i)
	}

	queue := make([]int, 0, fp.Len())
	inQueue := make([]bool, fp.Len())
	for i := 0; i < fp.Len(); i++ {
		queue = append(queue, i)
		inQueue[i] = true
	}
	tmp := bitvec.New(nd)
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		inQueue[i] = false
		r.Visits++
		for _, p := range fp.Instrs[i].Preds {
			r.In[i].Or(out[p])
		}
		tmp.CopyFrom(r.In[i])
		tmp.AndNot(kills[i])
		if b := r.DefBit[i]; b >= 0 {
			tmp.Set(b)
		}
		if !tmp.Equal(out[i]) {
			out[i].CopyFrom(tmp)
			for _, s := range fp.Instrs[i].Succs {
				if !inQueue[s] {
					inQueue[s] = true
					queue = append(queue, s)
				}
			}
		}
	}
	return r
}

// DefsReachingUse returns the flat indices of the assignment
// occurrences of variable x that reach the entry of flat instruction i.
func (r *ReachDefsResult) DefsReachingUse(i int, x ir.Var) []int {
	var out []int
	r.In[i].ForEach(func(bit int) {
		di := r.Defs[bit]
		if a := r.Flat.Instrs[di].Stmt.(ir.Assign); a.LHS == x {
			out = append(out, di)
		}
	})
	return out
}

// DefUseChains links every definition to the flat instructions that
// may use its value. Chains[k] lists, for def bit k, the using
// instructions.
func (r *ReachDefsResult) DefUseChains() [][]int {
	chains := make([][]int, len(r.Defs))
	for i, instr := range r.Flat.Instrs {
		used := ir.UsesSet(instr.Stmt)
		if len(used) == 0 {
			continue
		}
		r.In[i].ForEach(func(bit int) {
			di := r.Defs[bit]
			a := r.Flat.Instrs[di].Stmt.(ir.Assign)
			if used[a.LHS] {
				chains[bit] = append(chains[bit], i)
			}
		})
	}
	return chains
}
