package analysis

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/dataflow"
	"pdce/internal/ir"
	"pdce/internal/obs"
)

// FaintResult is the greatest solution of the faint-variable analysis
// of Table 1:
//
//	N-FAINT_ι(x) = ¬RELV-USED_ι(x) · (X-FAINT_ι(x) + MOD_ι(x))
//	                              · (X-FAINT_ι(lhs_ι) + ¬ASS-USED_ι(x))
//	X-FAINT_ι(x) = ∏_{ι' ∈ succ(ι)} N-FAINT_ι'(x)
//
// A variable is faint if on every path to the end node every
// right-hand-side occurrence is preceded by a modification or occurs
// in an assignment whose own left-hand side is faint. Faintness
// subsumes deadness and additionally catches self-sustaining useless
// computations such as the loop x := x+1 of Figure 9.
//
// The problem is not a bit-vector problem — the slot (ι, x) depends on
// the slot (ι, lhs_ι) of the same instruction — so the canonical
// solver works slotwise at instruction granularity, following the
// worklist discipline the paper describes in Sections 5.2 and 6.1.2.
type FaintResult struct {
	Vars *ir.VarTable
	Flat *dataflow.FlatProgram

	// NFaint[i], XFaint[i] are the entry/exit faint vectors of flat
	// instruction i.
	NFaint, XFaint []*bitvec.Vector

	// SlotUpdates counts worklist slot processings — the quantity
	// Section 6.1.2 bounds by O(i·v).
	SlotUpdates int

	// Cancelled reports that the solve was interrupted before
	// reaching the fixpoint. A cancelled solution is partial — still
	// above the greatest fixpoint — and must not justify any
	// elimination.
	Cancelled bool
}

// FaintVars solves the faint-variable analysis on g with the slotwise
// worklist algorithm.
func FaintVars(g *cfg.Graph) *FaintResult {
	return FaintVarsWith(g, g.CollectVars())
}

// FaintVarsWith is FaintVars over a caller-chosen variable universe.
func FaintVarsWith(g *cfg.Graph, vars *ir.VarTable) *FaintResult {
	return FaintVarsCancel(g, vars, nil)
}

// FaintVarsCancel is FaintVarsWith with a cancellation check consulted
// periodically while the slot worklist drains; when it returns true
// the solve stops early and the result comes back flagged Cancelled.
// A nil cancel solves to the fixpoint unconditionally.
func FaintVarsCancel(g *cfg.Graph, vars *ir.VarTable, cancel func() bool) *FaintResult {
	return FaintVarsObserve(g, vars, cancel, nil)
}

// FaintVarsObserve is FaintVarsCancel with a telemetry sink that
// receives the solve's slot-update and worklist-push counts (including
// the initial seeding) when it finishes or is cancelled. A nil sink
// collects nothing.
func FaintVarsObserve(g *cfg.Graph, vars *ir.VarTable, cancel func() bool, metrics *obs.SolverMetrics) *FaintResult {
	fp := dataflow.Flatten(g)
	nv := vars.Len()
	ni := fp.Len()
	r := &FaintResult{
		Vars:   vars,
		Flat:   fp,
		NFaint: make([]*bitvec.Vector, ni),
		XFaint: make([]*bitvec.Vector, ni),
	}
	for i := 0; i < ni; i++ {
		r.NFaint[i] = bitvec.NewAllOnes(nv)
		r.XFaint[i] = bitvec.NewAllOnes(nv)
	}

	// Per-instruction facts, precomputed once.
	type instrFacts struct {
		lhs      int   // variable index of LHS, or -1
		rhs      []int // variable indices used on an assignment RHS
		relvUses []int // variable indices used by a relevant statement
	}
	facts := make([]instrFacts, ni)
	for i, instr := range fp.Instrs {
		f := instrFacts{lhs: -1}
		switch s := instr.Stmt.(type) {
		case ir.Assign:
			f.lhs = vars.MustIndex(s.LHS)
			seen := map[int]bool{}
			ir.ExprVars(s.RHS, func(v ir.Var) {
				vi := vars.MustIndex(v)
				if !seen[vi] {
					seen[vi] = true
					f.rhs = append(f.rhs, vi)
				}
			})
		case ir.Out, ir.Branch:
			seen := map[int]bool{}
			ir.Uses(instr.Stmt, func(v ir.Var) {
				vi := vars.MustIndex(v)
				if !seen[vi] {
					seen[vi] = true
					f.relvUses = append(f.relvUses, vi)
				}
			})
		}
		facts[i] = f
	}

	isRelvUsed := func(i, x int) bool {
		for _, u := range facts[i].relvUses {
			if u == x {
				return true
			}
		}
		return false
	}
	isAssUsed := func(i, x int) bool {
		for _, u := range facts[i].rhs {
			if u == x {
				return true
			}
		}
		return false
	}

	// nEquation evaluates the N-FAINT equation for slot (i, x) from
	// the current X-FAINT values.
	nEquation := func(i, x int) bool {
		if isRelvUsed(i, x) {
			return false
		}
		f := facts[i]
		if !(r.XFaint[i].Get(x) || f.lhs == x) {
			return false
		}
		if isAssUsed(i, x) && !r.XFaint[i].Get(f.lhs) {
			return false
		}
		return true
	}

	// Slot worklist. Values only fall (true→false), so each slot
	// enters the queue O(1) times per dependency fall.
	type slot struct{ i, x int }
	var queue []slot
	pushes := 0
	queued := make([]bool, ni*nv)
	push := func(i, x int) {
		k := i*nv + x
		if !queued[k] {
			queued[k] = true
			queue = append(queue, slot{i, x})
			pushes++
		}
	}
	// Seed every slot once.
	for i := 0; i < ni; i++ {
		for x := 0; x < nv; x++ {
			push(i, x)
		}
	}

	for len(queue) > 0 {
		if cancel != nil && r.SlotUpdates%256 == 0 && cancel() {
			r.Cancelled = true
			metrics.RecordSlotSolve(r.SlotUpdates, pushes, true)
			return r
		}
		s := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		queued[s.i*nv+s.x] = false
		r.SlotUpdates++

		// X-FAINT_i(x) = ∏ over successors of N-FAINT(x); the
		// empty product (end instruction) stays true.
		newX := true
		for _, j := range fp.Instrs[s.i].Succs {
			if !r.NFaint[j].Get(s.x) {
				newX = false
				break
			}
		}
		xFell := false
		if !newX && r.XFaint[s.i].Get(s.x) {
			r.XFaint[s.i].Clear(s.x)
			xFell = true
		}

		newN := nEquation(s.i, s.x)
		if !newN && r.NFaint[s.i].Get(s.x) {
			r.NFaint[s.i].Clear(s.x)
			// The entry value of i feeds the exit values of
			// its predecessors.
			for _, p := range fp.Instrs[s.i].Preds {
				push(p, s.x)
			}
		}

		// The paper's subtlety: when the slot (ι, lhs_ι) has been
		// processed successfully (fell), the slots (ι, z) of the
		// right-hand-side variables z of ι depend on it and must
		// be revisited.
		if xFell && s.x == facts[s.i].lhs {
			for _, z := range facts[s.i].rhs {
				push(s.i, z)
			}
		}
	}
	metrics.RecordSlotSolve(r.SlotUpdates, pushes, false)
	return r
}

// FaintAfter reports whether variable v is faint immediately after
// statement idx of block n — the elimination criterion for faint code
// elimination.
func (r *FaintResult) FaintAfter(n *cfg.Node, idx int, v ir.Var) bool {
	vi, ok := r.Vars.Index(v)
	if !ok {
		return true
	}
	return r.XFaint[r.Flat.BlockEntry(n)+idx].Get(vi)
}

// EntryFaint returns N-FAINT at the entry of block n.
func (r *FaintResult) EntryFaint(n *cfg.Node) *bitvec.Vector {
	return r.NFaint[r.Flat.BlockEntry(n)]
}

// ExitFaint returns X-FAINT at the exit of block n.
func (r *FaintResult) ExitFaint(n *cfg.Node) *bitvec.Vector {
	return r.XFaint[r.Flat.BlockExit(n)]
}

// --- Blockwise reference solver ------------------------------------

// faintProblem solves the same equations with a block-level worklist
// whose transfer walks the block backwards. Functionally equivalent to
// the slotwise solver (both compute the greatest fixpoint); kept as a
// cross-check oracle and ablation subject.
type faintProblem struct {
	vars *ir.VarTable
	bits int
}

func (p *faintProblem) Bits() int                     { return p.bits }
func (p *faintProblem) Direction() dataflow.Direction { return dataflow.Backward }
func (p *faintProblem) Meet() dataflow.Meet           { return dataflow.Intersect }
func (p *faintProblem) Boundary() *bitvec.Vector      { return bitvec.NewAllOnes(p.bits) }
func (p *faintProblem) Top() *bitvec.Vector           { return bitvec.NewAllOnes(p.bits) }

func (p *faintProblem) Transfer(n *cfg.Node, out, in *bitvec.Vector) {
	in.CopyFrom(out)
	for si := len(n.Stmts) - 1; si >= 0; si-- {
		faintStep(p.vars, n.Stmts[si], in)
	}
}

// faintStep updates v from X-FAINT to N-FAINT across one instruction,
// in place. Order matters twice: the conjunct involving X-FAINT(lhs)
// must read the pre-update value, and for a self-referential
// assignment (lhs among its own operands, e.g. x := x+1) with a
// non-faint target, the operand-clearing conjunct overrides the MOD
// disjunct — so MOD is applied first and the clears afterwards.
func faintStep(vars *ir.VarTable, s ir.Stmt, v *bitvec.Vector) {
	switch st := s.(type) {
	case ir.Assign:
		lhsIdx := vars.MustIndex(st.LHS)
		lhsFaintAfter := v.Get(lhsIdx)
		v.Set(lhsIdx) // + MOD
		if !lhsFaintAfter {
			// ASS-USED operands of a non-faint target are not
			// faint before the instruction.
			ir.ExprVars(st.RHS, func(u ir.Var) {
				v.Clear(vars.MustIndex(u))
			})
		}
	case ir.Out, ir.Branch:
		ir.Uses(s, func(u ir.Var) { // ¬RELV-USED
			v.Clear(vars.MustIndex(u))
		})
	}
}

// BlockFaintResult is the blockwise reference solution.
type BlockFaintResult struct {
	Vars   *ir.VarTable
	NFaint []*bitvec.Vector // block entry, by NodeID
	XFaint []*bitvec.Vector // block exit, by NodeID
	Stats  dataflow.SolverStats
}

// FaintVarsBlockwise solves the faint analysis with the block-level
// reference solver.
func FaintVarsBlockwise(g *cfg.Graph) *BlockFaintResult {
	vars := g.CollectVars()
	prob := &faintProblem{vars: vars, bits: vars.Len()}
	sol := dataflow.Solve(g, prob)
	return &BlockFaintResult{Vars: vars, NFaint: sol.In, XFaint: sol.Out, Stats: sol.Stats}
}

// InstrXFaint returns X-FAINT immediately after every statement of
// block n under the blockwise solution.
func (r *BlockFaintResult) InstrXFaint(n *cfg.Node) []*bitvec.Vector {
	out := make([]*bitvec.Vector, len(n.Stmts))
	cur := r.XFaint[n.ID].Copy()
	for si := len(n.Stmts) - 1; si >= 0; si-- {
		out[si] = cur.Copy()
		faintStep(r.Vars, n.Stmts[si], cur)
	}
	return out
}
