package analysis

import (
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/ir"
	"pdce/internal/parser"
	"pdce/internal/progen"
)

func mustNode(t *testing.T, g *cfg.Graph, label string) *cfg.Node {
	t.Helper()
	n, ok := g.NodeByLabel(label)
	if !ok {
		t.Fatalf("no node %q", label)
	}
	return n
}

// --- Table 1: dead variables ------------------------------------------

func TestDeadVarsStraightLine(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 {
  x := a+b
  y := x+1
  out(y)
  x := 5
}
edge s 1
edge 1 e
`)
	d := DeadVars(g)
	n := mustNode(t, g, "1")
	xd := d.InstrXDead(n)

	x, _ := d.Vars.Index("x")
	y, _ := d.Vars.Index("y")
	a, _ := d.Vars.Index("a")

	// After x := a+b: x is used by y := x+1 -> live; a never used
	// again -> dead.
	if xd[0].Get(x) {
		t.Error("x dead immediately after its definition despite the use below")
	}
	if !xd[0].Get(a) {
		t.Error("a not dead after its last use")
	}
	// After out(y): y dead (no further use).
	if !xd[2].Get(y) {
		t.Error("y not dead after out(y)")
	}
	// After x := 5 (last statement): everything dead at program end.
	if !xd[3].Get(x) {
		t.Error("x not dead at program end")
	}
	// And therefore x := 5 is an eliminable dead assignment while
	// x := a+b is not.
	if !d.DeadAfter(n, 3, "x") || d.DeadAfter(n, 0, "x") {
		t.Error("DeadAfter disagrees with InstrXDead")
	}
}

func TestDeadVarsJoin(t *testing.T) {
	// x is dead after node 1 only if dead on BOTH branches.
	g := parser.MustParseCFG(`
node 1 { x := a+b }
node 2 {}
node 3 { out(x) }
node 4 { x := 1; out(x) }
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 e
edge 4 e
`)
	d := DeadVars(g)
	n1 := mustNode(t, g, "1")
	if d.DeadAfter(n1, 0, "x") {
		t.Error("x live through node 3 but reported dead")
	}
	// Branch statements keep their operands alive.
	g2 := parser.MustParseCFG(`
node 1 { c := a+b; branch(c > 0) }
node 2 {}
node 3 {}
node 4 { out(1) }
edge s 1
edge 1 2
edge 1 3
edge 2 4
edge 3 4
edge 4 e
`)
	d2 := DeadVars(g2)
	m := mustNode(t, g2, "1")
	if d2.DeadAfter(m, 0, "c") {
		t.Error("branch condition operand reported dead (footnote 2 violated)")
	}
}

func TestDeadVarsLoop(t *testing.T) {
	// i is live around the loop (used by the branch), acc is live
	// (used by out after), junk is dead.
	g := parser.MustParseCFG(`
node h { branch(i > 0) }
node b { acc := acc+i; junk := acc*2; i := i-1 }
node x { out(acc) }
edge s h
edge h b
edge h x
edge b h
edge x e
`)
	d := DeadVars(g)
	nb := mustNode(t, g, "b")
	if d.DeadAfter(nb, 0, "acc") {
		t.Error("acc reported dead in loop")
	}
	if !d.DeadAfter(nb, 1, "junk") {
		t.Error("junk not reported dead")
	}
	if d.DeadAfter(nb, 2, "i") {
		t.Error("i reported dead despite loop branch use")
	}
}

// --- Table 1: faint variables -----------------------------------------

func TestFaintFigure9(t *testing.T) {
	// The paper's Figure 9: x := x+1 in a loop, x never otherwise
	// used — faint but not dead.
	g := parser.MustParseCFG(`
node 1 {}
node 2 {}
node 3 { x := x+1 }
node 4 {}
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 2
edge 4 e
`)
	f := FaintVars(g)
	n3 := mustNode(t, g, "3")
	if !f.FaintAfter(n3, 0, "x") {
		t.Error("x not faint after x := x+1")
	}
	d := DeadVars(g)
	if d.DeadAfter(n3, 0, "x") {
		t.Error("x reported dead — it is only faint")
	}
}

func TestFaintChain(t *testing.T) {
	// a feeds b feeds c; c unused: the whole chain is faint, and
	// nothing is dead except the last link.
	g := parser.MustParseCFG(`
node 1 {
  a := 1
  b := a+1
  c := b+1
  out(9)
}
edge s 1
edge 1 e
`)
	f := FaintVars(g)
	d := DeadVars(g)
	n := mustNode(t, g, "1")
	for i, v := range []ir.Var{"a", "b", "c"} {
		if !f.FaintAfter(n, i, v) {
			t.Errorf("%s not faint after its definition", v)
		}
	}
	if d.DeadAfter(n, 0, "a") || d.DeadAfter(n, 1, "b") {
		t.Error("chain heads reported dead — only faint")
	}
	if !d.DeadAfter(n, 2, "c") {
		t.Error("chain tail not dead")
	}
}

func TestFaintStoppedByRelevantUse(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 {
  a := 1
  b := a+1
  out(b)
}
edge s 1
edge 1 e
`)
	f := FaintVars(g)
	n := mustNode(t, g, "1")
	if f.FaintAfter(n, 0, "a") || f.FaintAfter(n, 1, "b") {
		t.Error("variables feeding a relevant statement reported faint")
	}
}

// TestFaintSlotwiseMatchesBlockwise cross-validates the paper's
// slotwise worklist solver against the independent block-transfer
// solver on random programs — both compute the greatest solution of
// the Table 1 equations.
func TestFaintSlotwiseMatchesBlockwise(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		params := progen.Params{Seed: seed, Stmts: 50, Vars: 5, LoopProb: 0.15, BranchProb: 0.25}
		if seed%3 == 0 {
			params.Irreducible = true
		}
		g := progen.Generate(params)
		slot := FaintVars(g)
		block := FaintVarsBlockwise(g)
		// Compare N-FAINT at every block entry and X-FAINT at
		// every block exit.
		for _, n := range g.Nodes() {
			if !slot.EntryFaint(n).Equal(block.NFaint[n.ID]) {
				t.Fatalf("seed %d node %s: entry faint differs: slot=%s block=%s\n%s",
					seed, n.Label, slot.EntryFaint(n), block.NFaint[n.ID], g)
			}
			if !slot.ExitFaint(n).Equal(block.XFaint[n.ID]) {
				t.Fatalf("seed %d node %s: exit faint differs", seed, n.Label)
			}
			// Per-instruction agreement too.
			ix := block.InstrXFaint(n)
			for si := range n.Stmts {
				for vi := 0; vi < slot.Vars.Len(); vi++ {
					v := slot.Vars.Var(vi)
					if slot.FaintAfter(n, si, v) != ix[si].Get(vi) {
						t.Fatalf("seed %d node %s stmt %d var %s: instruction-level faint differs",
							seed, n.Label, si, v)
					}
				}
			}
		}
	}
}

// TestDeadImpliesFaint: deadness is strictly stronger per point.
func TestDeadImpliesFaint(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 40, Vars: 5})
		d := DeadVars(g)
		f := FaintVars(g)
		for _, n := range g.Nodes() {
			xd := d.InstrXDead(n)
			for si := range n.Stmts {
				for vi := 0; vi < d.Vars.Len(); vi++ {
					v := d.Vars.Var(vi)
					if xd[si].Get(vi) && !f.FaintAfter(n, si, v) {
						t.Fatalf("seed %d: %s dead but not faint after %s[%d]", seed, v, n.Label, si)
					}
				}
			}
		}
	}
}

// --- Figure 13: local predicates ---------------------------------------

func TestFigure13Candidates(t *testing.T) {
	// Block with the trailing a := d of Figure 13.
	g := parser.MustParseCFG(`
node 1 {
  y := a+b
  a := c
  x := 3*y
  y := a+b
  a := d
}
node 2 { out(x+y); out(a) }
edge s 1
edge 1 2
edge 2 e
`)
	pt := g.CollectPatterns()
	l := ComputeLocals(g, pt)
	n1 := mustNode(t, g, "1")

	cands := l.SinkingCandidates(n1)
	if len(cands) != 1 {
		t.Fatalf("candidates = %v, want exactly the trailing a := d", cands)
	}
	if cands[0].Pattern.String() != "a := d" || cands[0].StmtIndex != 4 {
		t.Errorf("candidate = %+v", cands[0])
	}

	// y := a+b has no candidate: the last occurrence is blocked by
	// the trailing modification of its operand a.
	yab, ok := pt.Index(ir.Pattern{LHS: "y", RHS: "(a+b)"})
	if !ok {
		t.Fatal("pattern y := a+b not collected")
	}
	if l.LocDelayed[n1.ID].Get(yab) {
		t.Error("blocked y := a+b reported as candidate")
	}
	if !l.LocBlocked[n1.ID].Get(yab) {
		t.Error("LOCBLOCKED not set for y := a+b")
	}
}

func TestFigure13CandidatesWithoutTrailingKill(t *testing.T) {
	// Dropping a := d makes the *last* y := a+b the candidate — and
	// only the last (the first is blocked by a := c, x := 3*y and
	// the second occurrence).
	g := parser.MustParseCFG(`
node 1 {
  y := a+b
  a := c
  x := 3*y
  y := a+b
}
node 2 { out(x+y); out(a) }
edge s 1
edge 1 2
edge 2 e
`)
	pt := g.CollectPatterns()
	l := ComputeLocals(g, pt)
	n1 := mustNode(t, g, "1")
	yab, _ := pt.Index(ir.Pattern{LHS: "y", RHS: "(a+b)"})
	if got := l.Candidate(n1.ID, yab); got != 3 {
		t.Errorf("candidate index = %d, want 3 (the last occurrence)", got)
	}
}

func TestFirstBlockerIdx(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 {
  z := 1
  out(x)
  z := 2
}
edge s 1
edge 1 e
`)
	pt := ir.NewPatternTable()
	xab := pt.Add(ir.Assign{LHS: "x", RHS: ir.Add(ir.V("a"), ir.V("b"))})
	l := ComputeLocals(g, pt)
	n := mustNode(t, g, "1")
	if got := l.FirstBlockerIdx(n, xab); got != 1 {
		t.Errorf("FirstBlockerIdx = %d, want 1 (the out(x))", got)
	}
}

// --- Table 2: delayability ----------------------------------------------

func TestDelayabilityFigure1(t *testing.T) {
	// Hand-checked solution of Table 2 on the paper's Figure 1.
	g := parser.MustParseCFG(`
node 1 { y := a+b }
node 2 {}
node 3 { y := c }
node 4 {}
node 5 { out(x+y) }
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 e
`)
	pt := g.CollectPatterns()
	r := Delayability(g, pt)
	alpha, ok := pt.Index(ir.Pattern{LHS: "y", RHS: "(a+b)"})
	if !ok {
		t.Fatal("pattern missing")
	}

	want := map[string]struct{ nDel, xDel, nIns, xIns bool }{
		"s": {false, false, false, false},
		"1": {false, true, false, false}, // LOCDELAYED arms X-DELAYED
		"2": {true, true, false, false},
		"3": {true, false, true, false}, // blocked by y := c -> N-INSERT
		"4": {true, true, false, true},  // join 5 not delayed -> X-INSERT
		"5": {false, false, false, false},
		"e": {false, false, false, false},
	}
	for label, w := range want {
		n := mustNode(t, g, label)
		if got := r.NDelayed[n.ID].Get(alpha); got != w.nDel {
			t.Errorf("N-DELAYED(%s) = %v, want %v", label, got, w.nDel)
		}
		if got := r.XDelayed[n.ID].Get(alpha); got != w.xDel {
			t.Errorf("X-DELAYED(%s) = %v, want %v", label, got, w.xDel)
		}
		if got := r.NInsert[n.ID].Get(alpha); got != w.nIns {
			t.Errorf("N-INSERT(%s) = %v, want %v", label, got, w.nIns)
		}
		if got := r.XInsert[n.ID].Get(alpha); got != w.xIns {
			t.Errorf("X-INSERT(%s) = %v, want %v", label, got, w.xIns)
		}
	}
	if r.Stable(g) {
		t.Error("figure 1 reported stable although sinking changes it")
	}
}

func TestDelayabilityNoExitInsertAtBranchNodes(t *testing.T) {
	// Footnote 6: after splitting critical edges there are no exit
	// insertions at branching nodes.
	for seed := int64(0); seed < 20; seed++ {
		g := progen.Generate(progen.Params{Seed: seed, Stmts: 50, LoopProb: 0.2, BranchProb: 0.3})
		cfg.SplitCriticalEdges(g)
		r := Delayability(g, g.CollectPatterns())
		for _, n := range g.Nodes() {
			if len(n.Succs()) > 1 && !r.XInsert[n.ID].IsZero() {
				t.Fatalf("seed %d: X-INSERT at branching node %s", seed, n.Label)
			}
		}
	}
}

func TestDelayabilityStableOnFixpoint(t *testing.T) {
	// A program with no sinking opportunity is stable: every
	// assignment immediately precedes its use.
	g := parser.MustParseCFG(`
node 1 { x := a+b; out(x) }
edge s 1
edge 1 e
`)
	r := Delayability(g, g.CollectPatterns())
	if !r.Stable(g) {
		t.Error("blocked-in-place program reported unstable")
	}
}

// --- reaching definitions ------------------------------------------------

func TestReachingDefs(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { x := 1 }
node 2 {}
node 3 { x := 2 }
node 4 { out(x) }
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 4
edge 4 e
`)
	rd := ReachingDefs(g)
	if len(rd.Defs) != 2 {
		t.Fatalf("Defs = %v", rd.Defs)
	}
	// Both definitions of x reach the out(x) use.
	n4 := mustNode(t, g, "4")
	outIdx := rd.Flat.BlockEntry(n4)
	defs := rd.DefsReachingUse(outIdx, "x")
	if len(defs) != 2 {
		t.Errorf("defs reaching out(x) = %v, want both", defs)
	}
	// The def in node 3 kills the def from node 1 on its path:
	// at the entry of node 3's statement, only def 1 reaches.
	n3 := mustNode(t, g, "3")
	n3Idx := rd.Flat.BlockEntry(n3)
	defs3 := rd.DefsReachingUse(n3Idx, "x")
	if len(defs3) != 1 {
		t.Errorf("defs reaching node 3 = %v, want one", defs3)
	}
	// Def-use chains: def at node 1 is used by out(x) (and nothing
	// else — node 3's assignment does not read x).
	chains := rd.DefUseChains()
	for bit, di := range rd.Defs {
		n := rd.Flat.Instrs[di].Node.Label
		switch n {
		case "1", "3":
			if len(chains[bit]) != 1 || rd.Flat.Instrs[chains[bit][0]].Node.Label != "4" {
				t.Errorf("chain of def in %s = %v", n, chains[bit])
			}
		}
	}
}

func TestReachingDefsKillWithinBlock(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 { x := 1; x := 2; out(x) }
edge s 1
edge 1 e
`)
	rd := ReachingDefs(g)
	n := mustNode(t, g, "1")
	outIdx := rd.Flat.BlockEntry(n) + 2
	defs := rd.DefsReachingUse(outIdx, "x")
	if len(defs) != 1 {
		t.Fatalf("defs reaching out = %v, want only the second", defs)
	}
	if rd.Flat.Instrs[defs[0]].Index != 1 {
		t.Errorf("surviving def is statement %d, want 1", rd.Flat.Instrs[defs[0]].Index)
	}
}

// --- liveness pressure ----------------------------------------------------

func TestPressureStraightLine(t *testing.T) {
	g := parser.MustParseCFG(`
node 1 {
  a := 1
  b := 2
  out(a+b)
}
edge s 1
edge 1 e
`)
	st := Pressure(g)
	// Entry of a := 1: nothing live. Entry of b := 2: a live (1).
	// Entry of out: a and b live (2). Plus s and e empty points (0).
	if st.Max != 2 {
		t.Errorf("Max = %d, want 2", st.Max)
	}
	if st.Total != 3 {
		t.Errorf("Total = %d, want 3 (0+1+2 at the statements, 0 at s/e)", st.Total)
	}
	if st.Points != 5 {
		t.Errorf("Points = %d, want 5", st.Points)
	}
	if st.Mean() <= 0 {
		t.Error("Mean not positive")
	}
}
