// Package analysis implements the data flow analyses of the paper:
// the dead- and faint-variable analyses of Table 1, the delayability
// analysis and insertion points of Table 2, and the supporting local
// predicates (sinking candidates, blockades; Section 5.3, Figure 13).
// It also provides reaching definitions / def-use chains for the
// def-use-graph dead code elimination baseline.
package analysis

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// Locals holds, for one flow graph and one pattern universe, the local
// predicates of Table 2:
//
//	LOCDELAYED_n(α)  — block n contains a sinking candidate of α,
//	LOCBLOCKED_n(α)  — some instruction of n blocks the sinking of α.
//
// A sinking candidate is an occurrence of α ≡ x := t that is not
// followed, within its block, by an instruction blocking α (an
// instruction that modifies an operand of t, uses x, or modifies x).
// Because every occurrence of α blocks α itself (it modifies x), at
// most the last occurrence in a block is a candidate.
type Locals struct {
	Patterns *ir.PatternTable

	// LocDelayed and LocBlocked are indexed by cfg.NodeID; one bit
	// per pattern.
	LocDelayed []*bitvec.Vector
	LocBlocked []*bitvec.Vector

	// Cands[nodeID] lists the block's sinking candidates as
	// (pattern index, statement index) pairs, at most one entry per
	// pattern, in decreasing statement order (the backward sweep's
	// discovery order). A compact list rather than a dense
	// per-pattern row: blocks hold a handful of candidates while the
	// pattern universe grows with the program, and the dense
	// nodes×patterns matrix dominated the allocation profile.
	Cands [][]CandEntry
}

// CandEntry records one sinking candidate of a block.
type CandEntry struct {
	Pat  int32 // pattern index
	Stmt int32 // statement index within the block
}

// Candidate returns the statement index of the sinking candidate of
// pattern pi in block id, or -1 if the block has none.
func (l *Locals) Candidate(id cfg.NodeID, pi int) int {
	for _, c := range l.Cands[id] {
		if int(c.Pat) == pi {
			return int(c.Stmt)
		}
	}
	return -1
}

// ComputeLocals computes the local predicates of every block of g over
// the pattern universe pt. It builds a PatternIndex internally; callers
// that recompute locals repeatedly over the same universe should build
// the index once and use its Locals/UpdateBlock methods.
func ComputeLocals(g *cfg.Graph, pt *ir.PatternTable) *Locals {
	return NewPatternIndex(pt).Locals(g)
}

// SinkingCandidates returns, for presentation and tests, the candidate
// occurrences of block n as (statement index, pattern) pairs in
// statement order.
func (l *Locals) SinkingCandidates(n *cfg.Node) []Candidate {
	var out []Candidate
	for _, c := range l.Cands[n.ID] {
		out = append(out, Candidate{StmtIndex: int(c.Stmt), Pattern: l.Patterns.Pattern(int(c.Pat)), PatternIdx: int(c.Pat)})
	}
	// Order by statement position for stable output.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].StmtIndex < out[j-1].StmtIndex; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Candidate is a sinking candidate occurrence.
type Candidate struct {
	StmtIndex  int
	Pattern    ir.Pattern
	PatternIdx int
}

// FirstBlockerIdx returns the statement index of the first instruction
// of n that blocks pattern pi, or len(n.Stmts) if none does. The
// sinking transformation inserts arriving instances of a pattern at
// block entry when a blocker exists (N-INSERT); this helper supports
// diagnostics explaining *why*.
func (l *Locals) FirstBlockerIdx(n *cfg.Node, pi int) int {
	for si, s := range n.Stmts {
		if l.Patterns.BlocksIdx(s, pi) {
			return si
		}
	}
	return len(n.Stmts)
}
