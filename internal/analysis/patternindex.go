package analysis

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// PatternIndex inverts a pattern table's blocking relation: instead of
// asking "does statement s block pattern α?" once per (statement,
// pattern) pair — the O(i·p) inner loop that dominated ComputeLocals —
// it precomputes, per variable, the bit-vector of patterns blocked by
// defining or by using that variable. A statement's full blocked set is
// then a handful of word-parallel ORs.
//
// The inversion follows Definition 3.1's discussion: s blocks α ≡ x:=t
// iff s modifies an operand of t, modifies x, or uses x. So
//
//	defBlocks[v] = { α : v ∈ Vars(t) ∨ v = x }   (s defines v)
//	useBlocks[v] = { α : v = x }                  (s uses v)
//
// The index is built once per pattern universe and shared by every
// locals computation over it.
type PatternIndex struct {
	Patterns *ir.PatternTable

	defBlocks map[ir.Var]*bitvec.Vector
	useBlocks map[ir.Var]*bitvec.Vector

	// blocks caches, per node, the resolved info of every statement
	// (parallel to n.Stmts). Resolution walks the statement's
	// definition and uses directly rather than memoizing per
	// statement value: hashing an ir.Stmt interface key goes through
	// reflection-driven typehash and costs as much as re-resolving,
	// so the per-block cache is the only memo layer.
	blocks []blockResolve

	// tmpl lazily caches, per pattern, the resolution of a canonical
	// inserted instance (the blocking vectors its definition and
	// operands select); SyncRewrite stitches rewritten blocks from
	// these templates and the old cache instead of re-resolving
	// statements through the pattern table's key strings.
	tmpl [][]*bitvec.Vector

	// rbInfo/rbVecs are SyncRewrite's build buffers, swapped with the
	// target block's slices on commit.
	rbInfo []stmtPatternInfo
	rbVecs []*bitvec.Vector
}

// blockResolve is the per-node statement cache. Validity is judged by
// the slice header (backing-array pointer + length): every rewrite in
// this repository either allocates a fresh statement slice or shrinks
// one in place, so an unchanged header implies unchanged statements.
// Holding head pins the cached backing array, so a later allocation
// can never alias it. vecs pools the blocking-vector lists of the
// block's statements (info entries hold offsets into it), so a rebuild
// reallocates nothing once capacities are warm.
type blockResolve struct {
	head *ir.Stmt
	n    int
	info []stmtPatternInfo
	vecs []*bitvec.Vector
}

// stmtPatternInfo is one statement's resolution: its own pattern index
// (-1 if not a tabled pattern) and the half-open range [bs:be) of the
// owning blockResolve's vecs holding the distinct blocking vectors its
// definition and uses select.
type stmtPatternInfo struct {
	pat    int32
	bs, be int32
}

// blockInfo returns the resolved statement cache of node, rebuilding
// it if the block was rewritten.
func (ix *PatternIndex) blockInfo(node *cfg.Node) *blockResolve {
	id := int(node.ID)
	if id >= len(ix.blocks) {
		grown := make([]blockResolve, id+1+len(ix.blocks)/2)
		copy(grown, ix.blocks)
		ix.blocks = grown
	}
	c := &ix.blocks[id]
	stmts := node.Stmts
	if c.n == len(stmts) && (c.n == 0 || c.head == &stmts[0]) {
		return c
	}
	c.info = c.info[:0]
	c.vecs = c.vecs[:0]
	// The closures are hoisted out of the statement loop (capturing
	// start by reference) so each rebuild allocates at most two
	// closure cells, not two per statement.
	start := 0
	add := func(bv *bitvec.Vector) {
		if bv == nil {
			return
		}
		for _, have := range c.vecs[start:] {
			if have == bv {
				return
			}
		}
		c.vecs = append(c.vecs, bv)
	}
	addUse := func(u ir.Var) { add(ix.useBlocks[u]) }
	for _, s := range stmts {
		e := stmtPatternInfo{pat: -1}
		if pi, ok := ix.Patterns.IndexOfStmt(s); ok {
			e.pat = int32(pi)
		}
		start = len(c.vecs)
		if d, ok := ir.Def(s); ok {
			add(ix.defBlocks[d])
		}
		ir.Uses(s, addUse)
		e.bs, e.be = int32(start), int32(len(c.vecs))
		c.info = append(c.info, e)
	}
	c.n = len(stmts)
	if c.n > 0 {
		c.head = &stmts[0]
	} else {
		c.head = nil
	}
	return c
}

// template returns the blocking-vector list of an inserted instance of
// pattern pi, building and caching it on first use. An instance of
// α ≡ x := t selects defBlocks[x] for its definition and useBlocks[v]
// for each operand v of t, deduplicated, mirroring blockInfo's
// per-statement resolution exactly.
func (ix *PatternIndex) template(pi int) []*bitvec.Vector {
	if ix.tmpl == nil {
		ix.tmpl = make([][]*bitvec.Vector, ix.Patterns.Len())
	}
	if t := ix.tmpl[pi]; t != nil {
		return t
	}
	t := make([]*bitvec.Vector, 0, 4)
	add := func(bv *bitvec.Vector) {
		if bv == nil {
			return
		}
		for _, have := range t {
			if have == bv {
				return
			}
		}
		t = append(t, bv)
	}
	add(ix.defBlocks[ix.Patterns.Pattern(pi).LHS])
	ir.ExprVars(ix.Patterns.RHSExprAt(pi), func(v ir.Var) { add(ix.useBlocks[v]) })
	ix.tmpl[pi] = t
	return t
}

// SyncRewrite synchronizes n's cached resolution after a rewrite, so
// the next UpdateBlock re-resolves nothing. old is the pre-rewrite
// statement slice; ops describes n.Stmts entry by entry — op >= 0 kept
// former statement old[op], op < 0 inserted an instance of pattern
// ^op. A cache that does not match old (because some unsynced path
// rewrote the block earlier) is left to lazy re-resolution instead.
func (ix *PatternIndex) SyncRewrite(n *cfg.Node, old []ir.Stmt, ops []int32) {
	id := int(n.ID)
	if id >= len(ix.blocks) {
		ix.blockInfo(n) // grows the table and resolves directly
		return
	}
	c := &ix.blocks[id]
	if c.n != len(old) || (c.n > 0 && c.head != &old[0]) {
		return // stale cache: blockInfo will re-resolve on demand
	}
	info := ix.rbInfo[:0]
	vecs := ix.rbVecs[:0]
	for _, op := range ops {
		var e stmtPatternInfo
		start := len(vecs)
		if op >= 0 {
			e = c.info[op]
			vecs = append(vecs, c.vecs[e.bs:e.be]...)
		} else {
			e.pat = ^op
			vecs = append(vecs, ix.template(int(^op))...)
		}
		e.bs, e.be = int32(start), int32(len(vecs))
		info = append(info, e)
	}
	c.info, ix.rbInfo = info, c.info[:0]
	c.vecs, ix.rbVecs = vecs, c.vecs[:0]
	c.n = len(n.Stmts)
	if c.n > 0 {
		c.head = &n.Stmts[0]
	} else {
		c.head = nil
	}
}

// NewPatternIndex builds the blocking index of pt.
func NewPatternIndex(pt *ir.PatternTable) *PatternIndex {
	ix := &PatternIndex{
		Patterns:  pt,
		defBlocks: make(map[ir.Var]*bitvec.Vector),
		useBlocks: make(map[ir.Var]*bitvec.Vector),
	}
	np := pt.Len()
	get := func(m map[ir.Var]*bitvec.Vector, v ir.Var) *bitvec.Vector {
		bv := m[v]
		if bv == nil {
			bv = bitvec.New(np)
			m[v] = bv
		}
		return bv
	}
	for pi := 0; pi < np; pi++ {
		p := pt.Pattern(pi)
		get(ix.defBlocks, p.LHS).Set(pi)
		get(ix.useBlocks, p.LHS).Set(pi)
		for v := range pt.RHSVarsAt(pi) {
			get(ix.defBlocks, v).Set(pi)
		}
	}
	return ix
}

// OrStmtBlocks ORs into dst the set of patterns whose sinking
// statement s blocks. dst must have Patterns.Len() bits.
func (ix *PatternIndex) OrStmtBlocks(s ir.Stmt, dst *bitvec.Vector) {
	or := func(bv *bitvec.Vector) {
		if bv != nil {
			dst.Or(bv)
		}
	}
	if d, ok := ir.Def(s); ok {
		or(ix.defBlocks[d])
	}
	ir.Uses(s, func(u ir.Var) { or(ix.useBlocks[u]) })
}

// StmtPattern returns the pattern index of statement s, or -1 if s is
// not an assignment of a tabled pattern.
func (ix *PatternIndex) StmtPattern(s ir.Stmt) int {
	if pi, ok := ix.Patterns.IndexOfStmt(s); ok {
		return pi
	}
	return -1
}

// ForEachPatternStmt calls f(si, pi) for every statement of n that is
// an occurrence of a tabled pattern, in statement order, using the
// per-block cache (no per-statement resolution for unchanged blocks).
func (ix *PatternIndex) ForEachPatternStmt(n *cfg.Node, f func(si, pi int)) {
	c := ix.blockInfo(n)
	for si := range c.info {
		if pat := c.info[si].pat; pat >= 0 {
			f(si, int(pat))
		}
	}
}

// UpdateBlock recomputes the local predicates of block n in place
// (LocDelayed, LocBlocked, Cands), with scratch as the blocked-below
// sweep vector (Patterns.Len() bits; clobbered). The slices of l must
// already be sized for n.ID.
func (ix *PatternIndex) UpdateBlock(l *Locals, n *cfg.Node, scratch *bitvec.Vector) {
	ld := l.LocDelayed[n.ID]
	ld.ClearAll()
	cands := l.Cands[n.ID][:0]
	// One backward sweep per block: a pattern occurrence is a
	// candidate iff no later instruction of the block blocks it;
	// scratch tracks "blocked by something at or after the current
	// position". After the sweep scratch is exactly LOCBLOCKED.
	// Every occurrence blocks its own pattern, so each pattern
	// contributes at most one candidate (its last occurrence).
	scratch.ClearAll()
	c := ix.blockInfo(n)
	for si := len(c.info) - 1; si >= 0; si-- {
		iv := &c.info[si]
		if pi := int(iv.pat); pi >= 0 && !scratch.Get(pi) {
			ld.Set(pi)
			cands = append(cands, CandEntry{Pat: iv.pat, Stmt: int32(si)})
		}
		for _, bv := range c.vecs[iv.bs:iv.be] {
			scratch.Or(bv)
		}
	}
	l.Cands[n.ID] = cands
	l.LocBlocked[n.ID].CopyFrom(scratch)
}

// UpdateBlockDelta is UpdateBlock with an exact change account: it
// ORs every pattern bit that differs between n's previous and new
// LocDelayed/LocBlocked into changed, and reports whether anything
// differed at all. oldLD and oldLB are caller scratch (Patterns.Len()
// bits; clobbered). The incremental delay solver uses the report to
// drop blocks whose rewrite left their equations bit-identical, and
// the accumulated mask to re-solve only the moved bits.
func (ix *PatternIndex) UpdateBlockDelta(l *Locals, n *cfg.Node, scratch, oldLD, oldLB, changed *bitvec.Vector) bool {
	oldLD.CopyFrom(l.LocDelayed[n.ID])
	oldLB.CopyFrom(l.LocBlocked[n.ID])
	ix.UpdateBlock(l, n, scratch)
	c1 := changed.OrXor(oldLD, l.LocDelayed[n.ID])
	c2 := changed.OrXor(oldLB, l.LocBlocked[n.ID])
	return c1 || c2
}

// Locals computes the local predicates of every block of g over the
// index's pattern universe.
func (ix *PatternIndex) Locals(g *cfg.Graph) *Locals {
	numNodes := g.NumNodes()
	np := ix.Patterns.Len()
	l := &Locals{
		Patterns:   ix.Patterns,
		LocDelayed: make([]*bitvec.Vector, numNodes),
		LocBlocked: make([]*bitvec.Vector, numNodes),
		Cands:      make([][]CandEntry, numNodes),
	}
	var arena bitvec.Arena
	for _, n := range g.Nodes() {
		l.LocDelayed[n.ID] = arena.New(np)
		l.LocBlocked[n.ID] = arena.New(np)
	}
	scratch := bitvec.New(np)
	for _, n := range g.Nodes() {
		ix.UpdateBlock(l, n, scratch)
	}
	return l
}
