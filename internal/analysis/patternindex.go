package analysis

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// PatternIndex inverts a pattern table's blocking relation: instead of
// asking "does statement s block pattern α?" once per (statement,
// pattern) pair — the O(i·p) inner loop that dominated ComputeLocals —
// it precomputes, per variable, the bit-vector of patterns blocked by
// defining or by using that variable. A statement's full blocked set is
// then a handful of word-parallel ORs.
//
// The inversion follows Definition 3.1's discussion: s blocks α ≡ x:=t
// iff s modifies an operand of t, modifies x, or uses x. So
//
//	defBlocks[v] = { α : v ∈ Vars(t) ∨ v = x }   (s defines v)
//	useBlocks[v] = { α : v = x }                  (s uses v)
//
// The index is built once per pattern universe and shared by every
// locals computation over it.
type PatternIndex struct {
	Patterns *ir.PatternTable

	defBlocks map[ir.Var]*bitvec.Vector
	useBlocks map[ir.Var]*bitvec.Vector
}

// NewPatternIndex builds the blocking index of pt.
func NewPatternIndex(pt *ir.PatternTable) *PatternIndex {
	ix := &PatternIndex{
		Patterns:  pt,
		defBlocks: make(map[ir.Var]*bitvec.Vector),
		useBlocks: make(map[ir.Var]*bitvec.Vector),
	}
	np := pt.Len()
	get := func(m map[ir.Var]*bitvec.Vector, v ir.Var) *bitvec.Vector {
		bv := m[v]
		if bv == nil {
			bv = bitvec.New(np)
			m[v] = bv
		}
		return bv
	}
	for pi := 0; pi < np; pi++ {
		p := pt.Pattern(pi)
		get(ix.defBlocks, p.LHS).Set(pi)
		get(ix.useBlocks, p.LHS).Set(pi)
		for v := range pt.RHSVarsAt(pi) {
			get(ix.defBlocks, v).Set(pi)
		}
	}
	return ix
}

// OrStmtBlocks ORs into dst the set of patterns whose sinking
// statement s blocks. dst must have Patterns.Len() bits.
func (ix *PatternIndex) OrStmtBlocks(s ir.Stmt, dst *bitvec.Vector) {
	if d, ok := ir.Def(s); ok {
		if bv := ix.defBlocks[d]; bv != nil {
			dst.Or(bv)
		}
	}
	ir.Uses(s, func(u ir.Var) {
		if bv := ix.useBlocks[u]; bv != nil {
			dst.Or(bv)
		}
	})
}

// UpdateBlock recomputes the local predicates of block n in place
// (LocDelayed, LocBlocked, CandidateIdx), with scratch as the
// blocked-below sweep vector (Patterns.Len() bits; clobbered). The
// slices of l must already be sized for n.ID.
func (ix *PatternIndex) UpdateBlock(l *Locals, n *cfg.Node, scratch *bitvec.Vector) {
	ld := l.LocDelayed[n.ID]
	ld.ClearAll()
	cand := l.CandidateIdx[n.ID]
	for i := range cand {
		cand[i] = -1
	}
	// One backward sweep per block: a pattern occurrence is a
	// candidate iff no later instruction of the block blocks it;
	// scratch tracks "blocked by something at or after the current
	// position". After the sweep scratch is exactly LOCBLOCKED.
	scratch.ClearAll()
	for si := len(n.Stmts) - 1; si >= 0; si-- {
		s := n.Stmts[si]
		if pi, ok := ix.Patterns.IndexOfStmt(s); ok && !scratch.Get(pi) {
			ld.Set(pi)
			cand[pi] = si
		}
		ix.OrStmtBlocks(s, scratch)
	}
	l.LocBlocked[n.ID].CopyFrom(scratch)
}

// Locals computes the local predicates of every block of g over the
// index's pattern universe.
func (ix *PatternIndex) Locals(g *cfg.Graph) *Locals {
	numNodes := g.NumNodes()
	np := ix.Patterns.Len()
	l := &Locals{
		Patterns:     ix.Patterns,
		LocDelayed:   make([]*bitvec.Vector, numNodes),
		LocBlocked:   make([]*bitvec.Vector, numNodes),
		CandidateIdx: make([][]int, numNodes),
	}
	var arena bitvec.Arena
	candStore := make([]int, numNodes*np)
	for _, n := range g.Nodes() {
		l.LocDelayed[n.ID] = arena.New(np)
		l.LocBlocked[n.ID] = arena.New(np)
		l.CandidateIdx[n.ID] = candStore[int(n.ID)*np : (int(n.ID)+1)*np : (int(n.ID)+1)*np]
	}
	scratch := bitvec.New(np)
	for _, n := range g.Nodes() {
		ix.UpdateBlock(l, n, scratch)
	}
	return l
}
