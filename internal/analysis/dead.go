package analysis

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/dataflow"
	"pdce/internal/ir"
	"pdce/internal/obs"
)

// DeadResult is the greatest solution of the dead-variable analysis of
// Table 1, a backward bit-vector problem over the variable universe:
//
//	N-DEAD_ι = ¬USED_ι · (X-DEAD_ι + MOD_ι)
//	X-DEAD_ι = ∏_{ι' ∈ succ(ι)} N-DEAD_ι'
//
// A variable is dead at a point if on every path to the end node every
// right-hand-side occurrence is preceded by a modification. Relevant
// statements (out, branch) count as uses. At the end node everything
// is dead (empty product).
type DeadResult struct {
	Vars *ir.VarTable

	// NDead[id] is N-DEAD at block entry, XDead[id] X-DEAD at block
	// exit, indexed by cfg.NodeID, one bit per variable.
	NDead, XDead []*bitvec.Vector

	Stats dataflow.SolverStats

	// memo resolves statements to variable indices without
	// re-walking expression trees (shared with the producing
	// problem; lazily built for hand-assembled results).
	memo *varMemo

	// scratch backs DeadAssignIndices' backward sweep, allocated on
	// first use and reused across calls.
	scratch *bitvec.Vector

	// scanStamp/scanEpoch, when set by an incremental solve,
	// restrict the elimination walk: nodes whose stamp misses the
	// epoch provably have both their statements and their solution
	// values unchanged since the previous solve, so the previous
	// elimination pass already emptied their dead-assignment sets.
	// A nil scanStamp (full solves, hand-built results) makes no
	// claim and every node must be scanned.
	scanStamp []uint32
	scanEpoch uint32
}

// NeedsScan reports whether the elimination step must examine block
// id, or may skip it because neither its statements nor its solution
// values moved since the previous elimination pass.
func (r *DeadResult) NeedsScan(id cfg.NodeID) bool {
	return r.scanStamp == nil || r.scanStamp[id] == r.scanEpoch
}

// stmtVars is a statement's footprint in the variable universe: the
// index of its defined variable (-1 if none), whether it is an
// assignment (the only statement kind elimination may remove), and
// the half-open range [us:ue) of the owning blockVars' uses slice
// holding its used-variable indices (possibly with repeats).
type stmtVars struct {
	def    int32
	assign bool
	us, ue int32
}

// varMemo resolves statement footprints per block. There is no
// per-statement memo map: hashing an ir.Stmt interface key goes
// through reflection-driven typehash and costs as much as re-walking
// the statement, so the per-node cache (validated by the statement
// slice header, like blockResolve) is the only memo layer.
type varMemo struct {
	vars   *ir.VarTable
	blocks []blockVars

	// rbInfo/rbUses are rebuildBlock's build buffers, swapped with
	// the target block's slices on commit.
	rbInfo []stmtVars
	rbUses []int32
}

// blockVars caches the resolved footprints of one node's statements.
// uses pools the used-variable indices of the block's statements
// (info entries hold offsets into it).
type blockVars struct {
	head *ir.Stmt
	n    int
	info []stmtVars
	uses []int32
}

func newVarMemo(vars *ir.VarTable) *varMemo {
	return &varMemo{vars: vars}
}

// blockInfo returns the resolved footprint cache of node, rebuilding
// it if the block was rewritten.
func (mm *varMemo) blockInfo(node *cfg.Node) *blockVars {
	id := int(node.ID)
	if id >= len(mm.blocks) {
		grown := make([]blockVars, id+1+len(mm.blocks)/2)
		copy(grown, mm.blocks)
		mm.blocks = grown
	}
	c := &mm.blocks[id]
	stmts := node.Stmts
	if c.n == len(stmts) && (c.n == 0 || c.head == &stmts[0]) {
		return c
	}
	c.info = c.info[:0]
	c.uses = c.uses[:0]
	// One closure cell per rebuild, not one per statement.
	addUse := func(u ir.Var) {
		c.uses = append(c.uses, int32(mm.vars.MustIndex(u)))
	}
	for _, s := range stmts {
		v := stmtVars{def: -1}
		if d, ok := ir.Def(s); ok {
			v.def = int32(mm.vars.MustIndex(d))
		}
		if _, ok := s.(ir.Assign); ok {
			v.assign = true
		}
		start := len(c.uses)
		ir.Uses(s, addUse)
		v.us, v.ue = int32(start), int32(len(c.uses))
		c.info = append(c.info, v)
	}
	c.n = len(stmts)
	if c.n > 0 {
		c.head = &stmts[0]
	} else {
		c.head = nil
	}
	return c
}

// rebuildBlock synchronizes node's cached footprints after a rewrite,
// so the next gen/kill recomputation re-walks no expression trees. old
// is the pre-rewrite statement slice; ops describes node.Stmts entry
// by entry — op >= 0 kept former statement old[op], op < 0 inserted a
// statement that is resolved directly (insertions are single
// assignments, so the walk is shallow). A cache that does not match
// old falls back to lazy re-resolution.
func (mm *varMemo) rebuildBlock(node *cfg.Node, old []ir.Stmt, ops []int32) {
	id := int(node.ID)
	if id >= len(mm.blocks) {
		mm.blockInfo(node)
		return
	}
	c := &mm.blocks[id]
	if c.n != len(old) || (c.n > 0 && c.head != &old[0]) {
		return
	}
	info := mm.rbInfo[:0]
	uses := mm.rbUses[:0]
	for si, op := range ops {
		var v stmtVars
		start := len(uses)
		if op >= 0 {
			v = c.info[op]
			uses = append(uses, c.uses[v.us:v.ue]...)
		} else {
			s := node.Stmts[si]
			v.def = -1
			if d, ok := ir.Def(s); ok {
				v.def = int32(mm.vars.MustIndex(d))
			}
			_, v.assign = s.(ir.Assign)
			ir.Uses(s, func(u ir.Var) {
				uses = append(uses, int32(mm.vars.MustIndex(u)))
			})
		}
		v.us, v.ue = int32(start), int32(len(uses))
		info = append(info, v)
	}
	c.info, mm.rbInfo = info, c.info[:0]
	c.uses, mm.rbUses = uses, c.uses[:0]
	c.n = len(node.Stmts)
	if c.n > 0 {
		c.head = &node.Stmts[0]
	} else {
		c.head = nil
	}
}

// step updates v from X-DEAD to N-DEAD across a single instruction, in
// place: the definition makes its target dead (+ MOD), then the uses
// make theirs live (· ¬USED — within one statement the use wins, as in
// x := x+1).
func (mm *varMemo) step(s ir.Stmt, v *bitvec.Vector) {
	if d, ok := ir.Def(s); ok {
		v.Set(mm.vars.MustIndex(d))
	}
	ir.Uses(s, func(u ir.Var) { v.Clear(mm.vars.MustIndex(u)) })
}

type deadProblem struct {
	vars *ir.VarTable
	bits int
	memo *varMemo

	// gen/kill are the per-block composition of the statement steps,
	// indexed by cfg.NodeID: walking a block backward, the earliest
	// statement touching a variable decides its fate — a pure
	// definition makes it dead on entry (gen), a use makes it live
	// (kill); a variable touched by neither passes through. The sets
	// are disjoint by construction, so
	//
	//	N-DEAD = (X-DEAD AND NOT kill) OR gen
	//
	// reproduces the statement walk exactly, one word-parallel pass
	// per block, and hands the solver its gen/kill fast paths.
	gen, kill []*bitvec.Vector
	arena     bitvec.Arena
}

func newDeadProblem(g *cfg.Graph, vars *ir.VarTable) *deadProblem {
	p := &deadProblem{
		vars: vars,
		bits: vars.Len(),
		memo: newVarMemo(vars),
		gen:  make([]*bitvec.Vector, g.NumNodes()),
		kill: make([]*bitvec.Vector, g.NumNodes()),
	}
	for _, n := range g.Nodes() {
		p.gen[n.ID] = p.arena.New(p.bits)
		p.kill[n.ID] = p.arena.New(p.bits)
		p.updateBlock(n)
	}
	return p
}

// updateBlock recomputes n's gen/kill masks from its current
// statements: a forward walk in which the first touch of each variable
// wins, uses before definition within a statement.
func (p *deadProblem) updateBlock(n *cfg.Node) {
	gen, kill := p.gen[n.ID], p.kill[n.ID]
	gen.ClearAll()
	kill.ClearAll()
	c := p.memo.blockInfo(n)
	for i := range c.info {
		info := &c.info[i]
		for _, u := range c.uses[info.us:info.ue] {
			ui := int(u)
			if !gen.Get(ui) && !kill.Get(ui) {
				kill.Set(ui)
			}
		}
		if info.def >= 0 {
			di := int(info.def)
			if !gen.Get(di) && !kill.Get(di) {
				gen.Set(di)
			}
		}
	}
}

// updateBlockDelta is updateBlock with a change account: it ORs every
// variable bit differing between n's previous and new gen/kill masks
// into changed (oldGen/oldKill are caller scratch) and reports whether
// anything differed — the incremental solver drops rewritten blocks
// whose masks came out bit-identical.
func (p *deadProblem) updateBlockDelta(n *cfg.Node, oldGen, oldKill, changed *bitvec.Vector) bool {
	oldGen.CopyFrom(p.gen[n.ID])
	oldKill.CopyFrom(p.kill[n.ID])
	p.updateBlock(n)
	c1 := changed.OrXor(oldGen, p.gen[n.ID])
	c2 := changed.OrXor(oldKill, p.kill[n.ID])
	return c1 || c2
}

func (p *deadProblem) Bits() int                     { return p.bits }
func (p *deadProblem) Direction() dataflow.Direction { return dataflow.Backward }
func (p *deadProblem) Meet() dataflow.Meet           { return dataflow.Intersect }
func (p *deadProblem) Boundary() *bitvec.Vector      { return bitvec.NewAllOnes(p.bits) }
func (p *deadProblem) Top() *bitvec.Vector           { return bitvec.NewAllOnes(p.bits) }

func (p *deadProblem) Transfer(n *cfg.Node, out, in *bitvec.Vector) {
	in.AndNotOrInto(out, p.kill[n.ID], p.gen[n.ID])
}

func (p *deadProblem) GenKill(n *cfg.Node) (gen, kill *bitvec.Vector) {
	return p.gen[n.ID], p.kill[n.ID]
}

// DeadVars solves the dead-variable analysis on g over its full
// variable universe.
func DeadVars(g *cfg.Graph) *DeadResult {
	return DeadVarsWith(g, g.CollectVars())
}

// DeadVarsWith solves the dead-variable analysis over a caller-chosen
// variable universe (which must cover every variable in g).
func DeadVarsWith(g *cfg.Graph, vars *ir.VarTable) *DeadResult {
	prob := newDeadProblem(g, vars)
	sol := dataflow.Solve(g, prob)
	return &DeadResult{Vars: vars, NDead: sol.In, XDead: sol.Out, Stats: sol.Stats, memo: prob.memo}
}

// DeadSolver solves the dead-variable analysis repeatedly on one graph
// whose block contents mutate between solves — the fixpoint driver's
// round structure. The variable universe is fixed at creation; it must
// cover every variable of every version of the program the solver sees
// (a superset is fine: a variable that no longer occurs is simply dead
// everywhere and influences no other bit).
type DeadSolver struct {
	g      *cfg.Graph
	prob   *deadProblem
	solver *dataflow.Solver
	res    DeadResult
	solved bool

	// Delta-solve state, mirroring DelaySolver's: the changed-bits
	// mask of one Solve, the before-image scratch backing it, and
	// the equation-changed subset of the dirty blocks.
	changed         *bitvec.Vector
	oldGen, oldKill *bitvec.Vector
	eqDirty         []cfg.NodeID
	scanStamp       []uint32
	scanEpoch       uint32
}

// NewDeadSolver creates a solver for g over the given universe.
func NewDeadSolver(g *cfg.Graph, vars *ir.VarTable) *DeadSolver {
	prob := newDeadProblem(g, vars)
	bits := vars.Len()
	s := &DeadSolver{
		g: g, prob: prob, solver: dataflow.NewSolver(g, prob),
		changed: bitvec.New(bits),
		oldGen:  bitvec.New(bits),
		oldKill: bitvec.New(bits),
	}
	sol := s.solver.Result()
	s.res = DeadResult{Vars: vars, NDead: sol.In, XDead: sol.Out, memo: prob.memo}
	return s
}

// SetCancel installs a cancellation check on the underlying worklist
// solver (see dataflow.Solver.SetCancel). A cancelled Solve returns a
// partial result flagged Stats.Cancelled that must not justify any
// elimination.
func (s *DeadSolver) SetCancel(cancel func() bool) { s.solver.SetCancel(cancel) }

// SetMetrics installs a telemetry sink recording every solve this
// solver performs. A nil sink (the default) collects nothing.
func (s *DeadSolver) SetMetrics(m *obs.SolverMetrics) { s.solver.SetMetrics(m) }

// SetMode selects the underlying solver's execution engine (see
// dataflow.SolverMode). The default Auto picks per solve.
func (s *DeadSolver) SetMode(m dataflow.SolverMode) { s.solver.SetMode(m) }

// ArenaStats reports the slab state of the solver's vector arenas (the
// fixpoint storage plus the gen/kill masks).
func (s *DeadSolver) ArenaStats() bitvec.ArenaStats {
	st := s.solver.ArenaStats()
	own := s.prob.arena.Stats()
	st.Slabs += own.Slabs
	st.CapWords += own.CapWords
	st.UsedWords += own.UsedWords
	return st
}

// Solve re-solves after the given blocks changed: their gen/kill masks
// are recomputed, then the fixpoint is re-solved reusing the previous
// round's solution outside the affected region (the dirty blocks and
// their transitive predecessors — deadness flows backward). A nil
// dirty set on a solved instance returns the cached solution; the
// first call always solves in full. The returned result aliases the
// solver's storage and is invalidated by the next Solve.
func (s *DeadSolver) Solve(dirty []cfg.NodeID) *DeadResult {
	wasSolved := s.solved
	var sol *dataflow.Result
	if wasSolved {
		// Blocks whose rewrite left their gen/kill masks
		// bit-identical changed no equation and drop out of the
		// re-solve.
		s.changed.ClearAll()
		eq := s.eqDirty[:0]
		for _, id := range dirty {
			if s.prob.updateBlockDelta(s.g.Node(id), s.oldGen, s.oldKill, s.changed) {
				eq = append(eq, id)
			}
		}
		s.eqDirty = eq
		sol = s.solver.ResolveDelta(eq, s.changed)
	} else {
		for _, id := range dirty {
			s.prob.updateBlock(s.g.Node(id))
		}
		sol = s.solver.Resolve(dirty)
	}
	s.res.Stats = sol.Stats
	s.solved = !sol.Stats.Cancelled
	s.setScan(sol.Touched, dirty)
	return &s.res
}

// SyncRewrite synchronizes the solver's per-block statement cache
// after the caller rewrote block n (see varMemo.rebuildBlock for the
// ops encoding). Purely an optimization: an unsynced rewrite is caught
// by the cache's statement-slice header check and re-resolved lazily.
func (s *DeadSolver) SyncRewrite(n *cfg.Node, old []ir.Stmt, ops []int32) {
	s.prob.memo.rebuildBlock(n, old, ops)
}

// setScan installs the elimination walk's restriction for this round:
// the union of the solver's touched set (solution values that may have
// moved) and the dirty set (statements that changed since the last
// elimination). With no touched-set guarantee the restriction is
// lifted and every node is scanned.
func (s *DeadSolver) setScan(touched, dirty []cfg.NodeID) {
	if touched == nil {
		s.res.scanStamp = nil
		return
	}
	if s.scanStamp == nil {
		s.scanStamp = make([]uint32, s.g.NumNodes())
	}
	s.scanEpoch++
	if s.scanEpoch == 0 {
		for i := range s.scanStamp {
			s.scanStamp[i] = 0
		}
		s.scanEpoch = 1
	}
	for _, id := range touched {
		s.scanStamp[id] = s.scanEpoch
	}
	for _, id := range dirty {
		s.scanStamp[id] = s.scanEpoch
	}
	s.res.scanStamp = s.scanStamp
	s.res.scanEpoch = s.scanEpoch
}

func (r *DeadResult) stepper() *varMemo {
	if r.memo == nil {
		r.memo = newVarMemo(r.Vars)
	}
	return r.memo
}

// InstrXDead returns X-DEAD immediately after every statement of block
// n (index i corresponds to n.Stmts[i]); the elimination step removes
// assignment i when the returned vector i has the bit of its LHS set.
func (r *DeadResult) InstrXDead(n *cfg.Node) []*bitvec.Vector {
	mm := r.stepper()
	out := make([]*bitvec.Vector, len(n.Stmts))
	cur := r.XDead[n.ID].Copy()
	for si := len(n.Stmts) - 1; si >= 0; si-- {
		out[si] = cur.Copy()
		mm.step(n.Stmts[si], cur)
	}
	return out
}

// DeadAssignIndices appends to dst the statement indices of every
// assignment of block n whose left-hand side is dead immediately after
// it — the elimination set of Section 5.2 — in decreasing index order.
// Unlike InstrXDead it allocates no per-statement vectors: one
// persistent scratch vector carries the backward sweep.
func (r *DeadResult) DeadAssignIndices(n *cfg.Node, dst []int) []int {
	if len(n.Stmts) == 0 {
		return dst
	}
	mm := r.stepper()
	if r.scratch == nil {
		r.scratch = bitvec.New(r.XDead[n.ID].Len())
	}
	cur := r.scratch
	cur.CopyFrom(r.XDead[n.ID])
	c := mm.blockInfo(n)
	for si := len(c.info) - 1; si >= 0; si-- {
		info := &c.info[si]
		// cur is X-DEAD immediately after statement si.
		if info.assign && info.def >= 0 && cur.Get(int(info.def)) {
			dst = append(dst, si)
		}
		if info.def >= 0 {
			cur.Set(int(info.def))
		}
		for _, u := range c.uses[info.us:info.ue] {
			cur.Clear(int(u))
		}
	}
	return dst
}

// DeadAfter reports whether variable v is dead immediately after
// statement idx of block n.
func (r *DeadResult) DeadAfter(n *cfg.Node, idx int, v ir.Var) bool {
	vi, ok := r.Vars.Index(v)
	if !ok {
		return true // a variable never mentioned is trivially dead
	}
	mm := r.stepper()
	cur := r.XDead[n.ID].Copy()
	for si := len(n.Stmts) - 1; si > idx; si-- {
		mm.step(n.Stmts[si], cur)
	}
	return cur.Get(vi)
}

// LiveAtEntry reports whether v is live (not dead) at the entry of n —
// convenience for baselines and diagnostics.
func (r *DeadResult) LiveAtEntry(n *cfg.Node, v ir.Var) bool {
	vi, ok := r.Vars.Index(v)
	if !ok {
		return false
	}
	return !r.NDead[n.ID].Get(vi)
}
