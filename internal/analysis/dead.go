package analysis

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/dataflow"
	"pdce/internal/ir"
	"pdce/internal/obs"
)

// DeadResult is the greatest solution of the dead-variable analysis of
// Table 1, a backward bit-vector problem over the variable universe:
//
//	N-DEAD_ι = ¬USED_ι · (X-DEAD_ι + MOD_ι)
//	X-DEAD_ι = ∏_{ι' ∈ succ(ι)} N-DEAD_ι'
//
// A variable is dead at a point if on every path to the end node every
// right-hand-side occurrence is preceded by a modification. Relevant
// statements (out, branch) count as uses. At the end node everything
// is dead (empty product).
type DeadResult struct {
	Vars *ir.VarTable

	// NDead[id] is N-DEAD at block entry, XDead[id] X-DEAD at block
	// exit, indexed by cfg.NodeID, one bit per variable.
	NDead, XDead []*bitvec.Vector

	Stats dataflow.SolverStats

	// scratch backs DeadAssignIndices' backward sweep, allocated on
	// first use and reused across calls.
	scratch *bitvec.Vector
}

type deadProblem struct {
	vars *ir.VarTable
	bits int
}

func (p *deadProblem) Bits() int                     { return p.bits }
func (p *deadProblem) Direction() dataflow.Direction { return dataflow.Backward }
func (p *deadProblem) Meet() dataflow.Meet           { return dataflow.Intersect }
func (p *deadProblem) Boundary() *bitvec.Vector      { return bitvec.NewAllOnes(p.bits) }
func (p *deadProblem) Top() *bitvec.Vector           { return bitvec.NewAllOnes(p.bits) }

func (p *deadProblem) Transfer(n *cfg.Node, out, in *bitvec.Vector) {
	in.CopyFrom(out)
	for si := len(n.Stmts) - 1; si >= 0; si-- {
		deadStep(p.vars, n.Stmts[si], in)
	}
}

// deadStep updates v from X-DEAD to N-DEAD across a single
// instruction, in place.
func deadStep(vars *ir.VarTable, s ir.Stmt, v *bitvec.Vector) {
	if d, ok := ir.Def(s); ok {
		v.Set(vars.MustIndex(d)) // + MOD
	}
	ir.Uses(s, func(u ir.Var) { // · ¬USED
		v.Clear(vars.MustIndex(u))
	})
}

// DeadVars solves the dead-variable analysis on g over its full
// variable universe.
func DeadVars(g *cfg.Graph) *DeadResult {
	return DeadVarsWith(g, g.CollectVars())
}

// DeadVarsWith solves the dead-variable analysis over a caller-chosen
// variable universe (which must cover every variable in g).
func DeadVarsWith(g *cfg.Graph, vars *ir.VarTable) *DeadResult {
	prob := &deadProblem{vars: vars, bits: vars.Len()}
	sol := dataflow.Solve(g, prob)
	return &DeadResult{Vars: vars, NDead: sol.In, XDead: sol.Out, Stats: sol.Stats}
}

// DeadSolver solves the dead-variable analysis repeatedly on one graph
// whose block contents mutate between solves — the fixpoint driver's
// round structure. The variable universe is fixed at creation; it must
// cover every variable of every version of the program the solver sees
// (a superset is fine: a variable that no longer occurs is simply dead
// everywhere and influences no other bit).
type DeadSolver struct {
	solver *dataflow.Solver
	res    DeadResult
}

// NewDeadSolver creates a solver for g over the given universe.
func NewDeadSolver(g *cfg.Graph, vars *ir.VarTable) *DeadSolver {
	s := &DeadSolver{
		solver: dataflow.NewSolver(g, &deadProblem{vars: vars, bits: vars.Len()}),
	}
	sol := s.solver.Result()
	s.res = DeadResult{Vars: vars, NDead: sol.In, XDead: sol.Out}
	return s
}

// SetCancel installs a cancellation check on the underlying worklist
// solver (see dataflow.Solver.SetCancel). A cancelled Solve returns a
// partial result flagged Stats.Cancelled that must not justify any
// elimination.
func (s *DeadSolver) SetCancel(cancel func() bool) { s.solver.SetCancel(cancel) }

// SetMetrics installs a telemetry sink recording every solve this
// solver performs. A nil sink (the default) collects nothing.
func (s *DeadSolver) SetMetrics(m *obs.SolverMetrics) { s.solver.SetMetrics(m) }

// ArenaStats reports the slab state of the solver's vector arena.
func (s *DeadSolver) ArenaStats() bitvec.ArenaStats { return s.solver.ArenaStats() }

// Solve re-solves after the given blocks changed, reusing the previous
// round's solution outside the affected region (the dirty blocks and
// their transitive predecessors — deadness flows backward). A nil
// dirty set on a solved instance returns the cached solution; the
// first call always solves in full. The returned result aliases the
// solver's storage and is invalidated by the next Solve.
func (s *DeadSolver) Solve(dirty []cfg.NodeID) *DeadResult {
	sol := s.solver.Resolve(dirty)
	s.res.Stats = sol.Stats
	return &s.res
}

// InstrXDead returns X-DEAD immediately after every statement of block
// n (index i corresponds to n.Stmts[i]); the elimination step removes
// assignment i when the returned vector i has the bit of its LHS set.
func (r *DeadResult) InstrXDead(n *cfg.Node) []*bitvec.Vector {
	out := make([]*bitvec.Vector, len(n.Stmts))
	cur := r.XDead[n.ID].Copy()
	for si := len(n.Stmts) - 1; si >= 0; si-- {
		out[si] = cur.Copy()
		deadStep(r.Vars, n.Stmts[si], cur)
	}
	return out
}

// DeadAssignIndices appends to dst the statement indices of every
// assignment of block n whose left-hand side is dead immediately after
// it — the elimination set of Section 5.2 — in decreasing index order.
// Unlike InstrXDead it allocates no per-statement vectors: one
// persistent scratch vector carries the backward sweep.
func (r *DeadResult) DeadAssignIndices(n *cfg.Node, dst []int) []int {
	if len(n.Stmts) == 0 {
		return dst
	}
	if r.scratch == nil {
		r.scratch = bitvec.New(r.XDead[n.ID].Len())
	}
	cur := r.scratch
	cur.CopyFrom(r.XDead[n.ID])
	for si := len(n.Stmts) - 1; si >= 0; si-- {
		s := n.Stmts[si]
		// cur is X-DEAD immediately after statement si.
		if a, ok := s.(ir.Assign); ok {
			if vi, known := r.Vars.Index(a.LHS); known && cur.Get(vi) {
				dst = append(dst, si)
			}
		}
		deadStep(r.Vars, s, cur)
	}
	return dst
}

// DeadAfter reports whether variable v is dead immediately after
// statement idx of block n.
func (r *DeadResult) DeadAfter(n *cfg.Node, idx int, v ir.Var) bool {
	vi, ok := r.Vars.Index(v)
	if !ok {
		return true // a variable never mentioned is trivially dead
	}
	cur := r.XDead[n.ID].Copy()
	for si := len(n.Stmts) - 1; si > idx; si-- {
		deadStep(r.Vars, n.Stmts[si], cur)
	}
	return cur.Get(vi)
}

// LiveAtEntry reports whether v is live (not dead) at the entry of n —
// convenience for baselines and diagnostics.
func (r *DeadResult) LiveAtEntry(n *cfg.Node, v ir.Var) bool {
	vi, ok := r.Vars.Index(v)
	if !ok {
		return false
	}
	return !r.NDead[n.ID].Get(vi)
}
