package analysis

import (
	"pdce/internal/cfg"
)

// PressureStats summarizes variable liveness as a register-pressure
// proxy. The paper's delayability analysis descends from lazy code
// motion's, whose purpose was minimizing the lifetimes of temporaries
// (Section 5.3); this metric lets experiments report how the
// assignment motions of this repository move that needle. Note the
// effect of sinking is inherently two-sided: the moved assignment's
// target range shrinks while its operands' ranges stretch down to the
// new location — so this is measurement machinery, not a guaranteed
// win.
type PressureStats struct {
	// Points is the number of instruction-entry program points
	// sampled (one per flat instruction).
	Points int
	// Total is the sum over all points of the number of live
	// variables; Total/Points is the mean pressure.
	Total int
	// Max is the largest number of simultaneously live variables.
	Max int
}

// Mean returns the average number of live variables per point.
func (p PressureStats) Mean() float64 {
	if p.Points == 0 {
		return 0
	}
	return float64(p.Total) / float64(p.Points)
}

// Pressure computes liveness pressure at instruction granularity:
// a variable is live at a point when it is not dead there (Table 1's
// complement).
func Pressure(g *cfg.Graph) PressureStats {
	dead := DeadVars(g)
	nv := dead.Vars.Len()

	var st PressureStats
	for _, n := range g.Nodes() {
		// Walk the block backwards reconstructing per-instruction
		// entry deadness, then count complements.
		cur := dead.XDead[n.ID].Copy()
		counts := make([]int, len(n.Stmts)+1)
		counts[len(n.Stmts)] = nv - cur.Count()
		for si := len(n.Stmts) - 1; si >= 0; si-- {
			dead.stepper().step(n.Stmts[si], cur)
			counts[si] = nv - cur.Count()
		}
		// One sample per instruction entry; empty blocks sample
		// their single implicit point.
		if len(n.Stmts) == 0 {
			st.Points++
			st.Total += counts[0]
			if counts[0] > st.Max {
				st.Max = counts[0]
			}
			continue
		}
		for si := 0; si < len(n.Stmts); si++ {
			st.Points++
			st.Total += counts[si]
			if counts[si] > st.Max {
				st.Max = counts[si]
			}
		}
	}
	return st
}
