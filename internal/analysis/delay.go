package analysis

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/dataflow"
	"pdce/internal/ir"
)

// DelayResult is the greatest solution of the delayability equation
// system of Table 2, together with the derived insertion predicates:
//
//	N-DELAYED_n = false                              if n = s
//	            = ∏_{m ∈ pred(n)} X-DELAYED_m        otherwise
//	X-DELAYED_n = LOCDELAYED_n + N-DELAYED_n · ¬LOCBLOCKED_n
//
//	N-INSERT_n  = N-DELAYED_n · LOCBLOCKED_n
//	X-INSERT_n  = X-DELAYED_n · Σ_{m ∈ succ(n)} ¬N-DELAYED_m
//
// Intuitively, N-DELAYED_n(α)/X-DELAYED_n(α) state that sinking
// candidates of α can be moved to the entry/exit of n; the insertion
// predicates mark the frontier where delaying must stop. After
// critical-edge splitting there are no exit insertions at branching
// nodes (footnote 6), and no insertion ever targets the end node's
// exit (the empty sum), which silently drops assignments that are dead
// along their remaining paths.
type DelayResult struct {
	Locals *Locals

	// NDelayed/XDelayed are indexed by cfg.NodeID, one bit per
	// pattern.
	NDelayed, XDelayed []*bitvec.Vector
	NInsert, XInsert   []*bitvec.Vector

	Stats dataflow.SolverStats
}

type delayProblem struct {
	locals *Locals
	bits   int
}

func (p *delayProblem) Bits() int                     { return p.bits }
func (p *delayProblem) Direction() dataflow.Direction { return dataflow.Forward }
func (p *delayProblem) Meet() dataflow.Meet           { return dataflow.Intersect }
func (p *delayProblem) Boundary() *bitvec.Vector      { return bitvec.New(p.bits) }
func (p *delayProblem) Top() *bitvec.Vector           { return bitvec.NewAllOnes(p.bits) }

func (p *delayProblem) Transfer(n *cfg.Node, in, out *bitvec.Vector) {
	// X = LOCDELAYED + N·¬LOCBLOCKED
	out.CopyFrom(in)
	out.AndNot(p.locals.LocBlocked[n.ID])
	out.Or(p.locals.LocDelayed[n.ID])
}

// Delayability solves Table 2 for graph g over pattern universe pt.
// The graph is expected to have its critical edges already split; the
// equations remain well-defined otherwise, but insertion points on
// critical edges would then be unrepresentable (Section 2.1).
func Delayability(g *cfg.Graph, pt *ir.PatternTable) *DelayResult {
	return DelayabilityWithLocals(g, ComputeLocals(g, pt))
}

// DelayabilityWithLocals is Delayability with precomputed local
// predicates (the PDE driver reuses them for the transformation step).
func DelayabilityWithLocals(g *cfg.Graph, locals *Locals) *DelayResult {
	bits := locals.Patterns.Len()
	prob := &delayProblem{locals: locals, bits: bits}
	sol := dataflow.Solve(g, prob)

	r := &DelayResult{
		Locals:   locals,
		NDelayed: sol.In,
		XDelayed: sol.Out,
		NInsert:  make([]*bitvec.Vector, g.NumNodes()),
		XInsert:  make([]*bitvec.Vector, g.NumNodes()),
		Stats:    sol.Stats,
	}
	for _, n := range g.Nodes() {
		ni := r.NDelayed[n.ID].Copy()
		ni.And(locals.LocBlocked[n.ID])
		r.NInsert[n.ID] = ni

		// Σ_{m ∈ succ} ¬N-DELAYED_m: some successor is not
		// delayed. Empty sum (end node) is false.
		someSuccNotDelayed := bitvec.New(bits)
		for _, m := range n.Succs() {
			nd := r.NDelayed[m.ID].Copy()
			nd.Not()
			someSuccNotDelayed.Or(nd)
		}
		xi := r.XDelayed[n.ID].Copy()
		xi.And(someSuccNotDelayed)
		r.XInsert[n.ID] = xi
	}
	return r
}

// Stable reports whether the assignment sinking transformation induced
// by this solution leaves the program invariant — the paper's
// termination condition (Section 5.4): every block n satisfies
// N-INSERT_n = false and X-INSERT_n = LOCDELAYED_n.
func (r *DelayResult) Stable(g *cfg.Graph) bool {
	for _, n := range g.Nodes() {
		if !r.NInsert[n.ID].IsZero() {
			return false
		}
		if !r.XInsert[n.ID].Equal(r.Locals.LocDelayed[n.ID]) {
			return false
		}
	}
	return true
}
