package analysis

import (
	"pdce/internal/bitvec"
	"pdce/internal/cfg"
	"pdce/internal/dataflow"
	"pdce/internal/ir"
	"pdce/internal/obs"
)

// DelayResult is the greatest solution of the delayability equation
// system of Table 2, together with the derived insertion predicates:
//
//	N-DELAYED_n = false                              if n = s
//	            = ∏_{m ∈ pred(n)} X-DELAYED_m        otherwise
//	X-DELAYED_n = LOCDELAYED_n + N-DELAYED_n · ¬LOCBLOCKED_n
//
//	N-INSERT_n  = N-DELAYED_n · LOCBLOCKED_n
//	X-INSERT_n  = X-DELAYED_n · Σ_{m ∈ succ(n)} ¬N-DELAYED_m
//
// Intuitively, N-DELAYED_n(α)/X-DELAYED_n(α) state that sinking
// candidates of α can be moved to the entry/exit of n; the insertion
// predicates mark the frontier where delaying must stop. After
// critical-edge splitting there are no exit insertions at branching
// nodes (footnote 6), and no insertion ever targets the end node's
// exit (the empty sum), which silently drops assignments that are dead
// along their remaining paths.
type DelayResult struct {
	Locals *Locals

	// NDelayed/XDelayed are indexed by cfg.NodeID, one bit per
	// pattern.
	NDelayed, XDelayed []*bitvec.Vector
	NInsert, XInsert   []*bitvec.Vector

	Stats dataflow.SolverStats
}

type delayProblem struct {
	locals *Locals
	bits   int
}

func (p *delayProblem) Bits() int                     { return p.bits }
func (p *delayProblem) Direction() dataflow.Direction { return dataflow.Forward }
func (p *delayProblem) Meet() dataflow.Meet           { return dataflow.Intersect }
func (p *delayProblem) Boundary() *bitvec.Vector      { return bitvec.New(p.bits) }
func (p *delayProblem) Top() *bitvec.Vector           { return bitvec.NewAllOnes(p.bits) }

func (p *delayProblem) Transfer(n *cfg.Node, in, out *bitvec.Vector) {
	// X = LOCDELAYED + N·¬LOCBLOCKED
	out.AndNotOrInto(in, p.locals.LocBlocked[n.ID], p.locals.LocDelayed[n.ID])
}

// GenKill exposes the transfer in canonical gen/kill form — Table 2's
// X-DELAYED equation already is one, with the candidate occurrences as
// gen and the blockades as kill — unlocking the solver's fused dense
// transfer and the per-pattern sparse engine.
func (p *delayProblem) GenKill(n *cfg.Node) (gen, kill *bitvec.Vector) {
	return p.locals.LocDelayed[n.ID], p.locals.LocBlocked[n.ID]
}

// Delayability solves Table 2 for graph g over pattern universe pt.
// The graph is expected to have its critical edges already split; the
// equations remain well-defined otherwise, but insertion points on
// critical edges would then be unrepresentable (Section 2.1).
func Delayability(g *cfg.Graph, pt *ir.PatternTable) *DelayResult {
	return DelayabilityWithLocals(g, ComputeLocals(g, pt))
}

// DelayabilityWithLocals is Delayability with precomputed local
// predicates (the regional driver restricts them before solving).
func DelayabilityWithLocals(g *cfg.Graph, locals *Locals) *DelayResult {
	bits := locals.Patterns.Len()
	prob := &delayProblem{locals: locals, bits: bits}
	sol := dataflow.Solve(g, prob)

	r := &DelayResult{
		Locals:   locals,
		NDelayed: sol.In,
		XDelayed: sol.Out,
		NInsert:  make([]*bitvec.Vector, g.NumNodes()),
		XInsert:  make([]*bitvec.Vector, g.NumNodes()),
		Stats:    sol.Stats,
	}
	var arena bitvec.Arena
	for _, n := range g.Nodes() {
		r.NInsert[n.ID] = arena.New(bits)
		r.XInsert[n.ID] = arena.New(bits)
	}
	computeInserts(g, r)
	return r
}

// computeInserts derives the insertion predicates from a solved
// delayability system, writing into the preallocated NInsert/XInsert
// vectors of r.
func computeInserts(g *cfg.Graph, r *DelayResult) {
	for _, n := range g.Nodes() {
		computeInsertsNode(r, n)
	}
}

// computeInsertsNode refreshes one block's insertion predicates from
// the solved system.
func computeInsertsNode(r *DelayResult, n *cfg.Node) {
	// N-INSERT ⊆ N-DELAYED and X-INSERT ⊆ X-DELAYED; the delay
	// solution is sparse (most blocks delay nothing), so an
	// early-exit zero scan usually replaces the full products.
	if r.NDelayed[n.ID].IsZero() {
		r.NInsert[n.ID].ClearAll()
	} else {
		r.NInsert[n.ID].AndInto(r.NDelayed[n.ID], r.Locals.LocBlocked[n.ID])
	}

	// X-INSERT = X-DELAYED · Σ_{m ∈ succ} ¬N-DELAYED_m: some
	// successor is not delayed. Empty sum (end node) is false.
	xi := r.XInsert[n.ID]
	if r.XDelayed[n.ID].IsZero() {
		xi.ClearAll()
		return
	}
	switch succs := n.Succs(); len(succs) {
	case 0:
		xi.ClearAll()
	case 1:
		xi.AndNotInto(r.XDelayed[n.ID], r.NDelayed[succs[0].ID])
	default:
		xi.ClearAll()
		for _, m := range succs {
			xi.OrNot(r.NDelayed[m.ID])
		}
		xi.And(r.XDelayed[n.ID])
	}
}

// DelaySolver solves the delayability system repeatedly on one graph
// whose block contents mutate between solves. It owns the pattern
// blocking index, the local predicates, and the solution storage; a
// solve after k blocks changed recomputes k blocks' locals and
// re-iterates only the affected region (the dirty blocks and their
// transitive successors — delayability flows forward).
//
// The pattern universe is fixed at creation and must cover every
// pattern of every version of the program the solver sees. A superset
// is exact: a pattern with no remaining occurrence has LOCDELAYED
// false everywhere, and since the start node's boundary is the empty
// set and every node is reachable from it, the greatest solution
// assigns it X-DELAYED = false everywhere — no spurious insertions.
type DelaySolver struct {
	g       *cfg.Graph
	Index   *PatternIndex
	locals  *Locals
	solver  *dataflow.Solver
	res     DelayResult
	solved  bool
	arena   bitvec.Arena // backs the insertion-predicate vectors
	metrics *obs.SolverMetrics

	scratch *bitvec.Vector // locals sweep scratch

	// Delta-solve state: changed accumulates the pattern bits whose
	// local predicates moved across the dirty blocks of one Solve
	// (oldLD/oldLB are the before-images backing the comparison);
	// eqDirty is the dirty set filtered down to blocks whose
	// equations actually changed. insStamp/insEpoch dedupe the
	// restricted insertion-predicate refresh.
	changed      *bitvec.Vector
	oldLD, oldLB *bitvec.Vector
	eqDirty      []cfg.NodeID
	insStamp     []uint32
	insEpoch     uint32
}

// NewDelaySolver creates a solver for g over pattern universe pt.
func NewDelaySolver(g *cfg.Graph, pt *ir.PatternTable) *DelaySolver {
	ix := NewPatternIndex(pt)
	bits := pt.Len()
	s := &DelaySolver{
		g:        g,
		Index:    ix,
		locals:   ix.Locals(g),
		scratch:  bitvec.New(bits),
		changed:  bitvec.New(bits),
		oldLD:    bitvec.New(bits),
		oldLB:    bitvec.New(bits),
		insStamp: make([]uint32, g.NumNodes()),
	}
	s.solver = dataflow.NewSolver(g, &delayProblem{locals: s.locals, bits: bits})
	sol := s.solver.Result()
	s.res = DelayResult{
		Locals:   s.locals,
		NDelayed: sol.In,
		XDelayed: sol.Out,
		NInsert:  make([]*bitvec.Vector, g.NumNodes()),
		XInsert:  make([]*bitvec.Vector, g.NumNodes()),
	}
	for _, n := range g.Nodes() {
		s.res.NInsert[n.ID] = s.arena.New(bits)
		s.res.XInsert[n.ID] = s.arena.New(bits)
	}
	return s
}

// Locals exposes the solver's local predicates (kept current by Solve).
func (s *DelaySolver) Locals() *Locals { return s.locals }

// SetCancel installs a cancellation check on the underlying worklist
// solver (see dataflow.Solver.SetCancel). A cancelled Solve returns a
// partial result flagged Stats.Cancelled that must not justify any
// sinking.
func (s *DelaySolver) SetCancel(cancel func() bool) { s.solver.SetCancel(cancel) }

// SetMetrics installs a telemetry sink recording every solve this
// solver performs, including the cached-solution fast path. A nil sink
// (the default) collects nothing.
func (s *DelaySolver) SetMetrics(m *obs.SolverMetrics) {
	s.metrics = m
	s.solver.SetMetrics(m)
}

// SetMode selects the underlying solver's execution engine (see
// dataflow.SolverMode). The default Auto picks per solve.
func (s *DelaySolver) SetMode(m dataflow.SolverMode) { s.solver.SetMode(m) }

// ArenaStats reports the combined slab state of the solver's vector
// arenas (the fixpoint solution storage plus the insertion predicates).
func (s *DelaySolver) ArenaStats() bitvec.ArenaStats {
	st := s.solver.ArenaStats()
	own := s.arena.Stats()
	st.Slabs += own.Slabs
	st.CapWords += own.CapWords
	st.UsedWords += own.UsedWords
	return st
}

// Solve re-solves after the given blocks changed: their local
// predicates are recomputed, the fixpoint is re-seeded over the
// affected region, and the insertion predicates are refreshed. A nil
// dirty set on a solved instance returns the cached solution; the
// first call always solves in full. The returned result aliases the
// solver's storage and is invalidated by the next Solve.
func (s *DelaySolver) Solve(dirty []cfg.NodeID) *DelayResult {
	if s.solved && len(dirty) == 0 {
		s.metrics.RecordCacheHit()
		s.res.Stats = dataflow.SolverStats{}
		return &s.res
	}
	wasSolved := s.solved
	s.solved = true
	var sol *dataflow.Result
	if wasSolved {
		// Recompute the dirty blocks' local predicates with an
		// exact account of which pattern bits moved. Blocks whose
		// rewrite left their predicates bit-identical contribute no
		// equation change and drop out of the re-solve; the solver
		// uses the accumulated mask to re-solve only the moved bits
		// when its sparse delta path is eligible.
		s.changed.ClearAll()
		eq := s.eqDirty[:0]
		for _, id := range dirty {
			if s.Index.UpdateBlockDelta(s.locals, s.g.Node(id), s.scratch, s.oldLD, s.oldLB, s.changed) {
				eq = append(eq, id)
			}
		}
		s.eqDirty = eq
		sol = s.solver.ResolveDelta(eq, s.changed)
	} else {
		for _, id := range dirty {
			s.Index.UpdateBlock(s.locals, s.g.Node(id), s.scratch)
		}
		sol = s.solver.Resolve(dirty)
	}
	s.res.Stats = sol.Stats
	if sol.Stats.Cancelled {
		// The partial solution justifies nothing: leave the
		// insertion predicates stale and force the next solve to
		// start from scratch.
		s.solved = false
		return &s.res
	}
	s.refreshInserts(sol.Touched)
	return &s.res
}

// refreshInserts recomputes the insertion predicates after a solve.
// With no touched-set guarantee every block is refreshed; otherwise
// only the blocks whose inputs could have moved are: a block's
// N-INSERT/X-INSERT read its own solution and local predicates (the
// touched set and the equation-changed dirty blocks) and its
// successors' N-DELAYED (the predecessors of touched blocks).
func (s *DelaySolver) refreshInserts(touched []cfg.NodeID) {
	if touched == nil {
		computeInserts(s.g, &s.res)
		return
	}
	s.insEpoch++
	if s.insEpoch == 0 {
		for i := range s.insStamp {
			s.insStamp[i] = 0
		}
		s.insEpoch = 1
	}
	refresh := func(n *cfg.Node) {
		if s.insStamp[n.ID] != s.insEpoch {
			s.insStamp[n.ID] = s.insEpoch
			computeInsertsNode(&s.res, n)
		}
	}
	for _, id := range touched {
		n := s.g.Node(id)
		refresh(n)
		for _, p := range n.Preds() {
			refresh(p)
		}
	}
	for _, id := range s.eqDirty {
		refresh(s.g.Node(id))
	}
}

// Stable reports whether the assignment sinking transformation induced
// by this solution leaves the program invariant — the paper's
// termination condition (Section 5.4): every block n satisfies
// N-INSERT_n = false and X-INSERT_n = LOCDELAYED_n.
func (r *DelayResult) Stable(g *cfg.Graph) bool {
	for _, n := range g.Nodes() {
		if !r.NInsert[n.ID].IsZero() {
			return false
		}
		if !r.XInsert[n.ID].Equal(r.Locals.LocDelayed[n.ID]) {
			return false
		}
	}
	return true
}
