package figures

import (
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/verify"
)

func TestAllFiguresWellFormed(t *testing.T) {
	figs := All()
	if len(figs) != 10 {
		t.Fatalf("expected 10 figures, got %d", len(figs))
	}
	seen := map[int]bool{}
	prev := 0
	for _, f := range figs {
		if f.Num <= prev {
			t.Errorf("figures not ordered by number: %d after %d", f.Num, prev)
		}
		prev = f.Num
		if seen[f.Num] {
			t.Errorf("duplicate figure %d", f.Num)
		}
		seen[f.Num] = true
		if f.Name == "" || f.Title == "" || f.Notes == "" {
			t.Errorf("figure %d missing metadata", f.Num)
		}
		g := f.Graph()
		cfg.MustValidate(g)
		if w := f.PDEGraph(); w != nil {
			cfg.MustValidate(w)
		}
		if w := f.PFEGraph(); w != nil {
			cfg.MustValidate(w)
		}
	}
}

func TestByNum(t *testing.T) {
	f, err := ByNum(5)
	if err != nil || f.Num != 5 {
		t.Fatalf("ByNum(5) = %v, %v", f, err)
	}
	if _, err := ByNum(2); err == nil {
		t.Error("ByNum(2) should fail: figure 2 is a result drawing, not an input")
	}
}

// TestExpectedGraphsPreserveBranchingStructure: the paper's guarantee
// framework relies on before/after having the same branch decisions
// available; expected graphs may add only synthetic pass-through
// nodes.
func TestExpectedGraphsPreserveBranchingStructure(t *testing.T) {
	for _, f := range All() {
		want := f.PDEGraph()
		if want == nil {
			continue
		}
		in := f.Graph()
		branchesIn := 0
		for _, n := range in.Nodes() {
			if len(n.Succs()) > 1 {
				branchesIn++
			}
		}
		branchesOut := 0
		for _, n := range want.Nodes() {
			if len(n.Succs()) > 1 {
				branchesOut++
			}
		}
		if branchesIn != branchesOut {
			t.Errorf("%s: branch-point count changed %d -> %d", f.Name, branchesIn, branchesOut)
		}
	}
}

// TestExpectedResultsAreBehaviorallyEquivalent: the encoded expected
// graphs themselves must be valid optimizations of the inputs — this
// guards the hand-reconstruction of the figures against transcription
// mistakes, independent of the algorithm.
func TestExpectedResultsAreBehaviorallyEquivalent(t *testing.T) {
	for _, f := range All() {
		for _, pair := range []struct {
			name string
			want *cfg.Graph
		}{
			{"pde", f.PDEGraph()},
			{"pfe", f.PFEGraph()},
		} {
			if pair.want == nil {
				continue
			}
			rep := verify.CheckTransformed(f.Graph(), pair.want, verify.Options{Seeds: 64, Fuel: 512})
			if !rep.OK() {
				t.Errorf("%s/%s: expected graph is not a valid optimization: %s",
					f.Name, pair.name, rep)
			}
		}
	}
}

// TestFiguresExerciseDistinctPhenomena: sanity-check a few headline
// properties the figures were chosen for.
func TestFiguresExerciseDistinctPhenomena(t *testing.T) {
	// Figure 5 contains an irreducible region.
	f5, _ := ByNum(5)
	g5 := f5.Graph()
	dom := cfg.BuildDomTree(g5)
	irreducible := false
	for _, e := range g5.Edges() {
		if pathExists(e.To, e.From) && !dom.Dominates(e.To, e.From) {
			irreducible = true
		}
	}
	if !irreducible {
		t.Error("figure 5 lost its irreducible loop in reconstruction")
	}

	// Figure 8 contains a critical edge; figure 1 does not.
	f8, _ := ByNum(8)
	if cfg.CountCriticalEdges(f8.Graph()) == 0 {
		t.Error("figure 8 has no critical edge")
	}
	f1, _ := ByNum(1)
	if cfg.CountCriticalEdges(f1.Graph()) != 0 {
		t.Error("figure 1 unexpectedly has a critical edge")
	}

	// Figure 9's pde expectation equals its input (nothing to do),
	// while its pfe expectation differs.
	f9, _ := ByNum(9)
	if !cfg.Equal(f9.Graph(), f9.PDEGraph()) {
		t.Error("figure 9 pde expectation should equal the input")
	}
	if cfg.Equal(f9.Graph(), f9.PFEGraph()) {
		t.Error("figure 9 pfe expectation should differ from the input")
	}
}

func pathExists(a, b *cfg.Node) bool {
	seen := map[*cfg.Node]bool{}
	stack := []*cfg.Node{a}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == b {
			return true
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.Succs()...)
	}
	return false
}

// TestExpectedResultsExhaustive upgrades the behavioural check from
// sampling to full enumeration: for every figure, EVERY
// nondeterministic execution (fuel-bounded on the cyclic ones) of the
// expected result must match the input program.
func TestExpectedResultsExhaustive(t *testing.T) {
	for _, f := range All() {
		for _, pair := range []struct {
			name string
			want *cfg.Graph
		}{
			{"pde", f.PDEGraph()},
			{"pfe", f.PFEGraph()},
		} {
			if pair.want == nil {
				continue
			}
			rep, err := verify.CheckTransformedExhaustive(f.Graph(), pair.want, 64, 1<<12)
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, pair.name, err)
			}
			if !rep.OK() {
				t.Errorf("%s/%s: exhaustive check failed: %s", f.Name, pair.name, rep)
			}
			if rep.Executions == 0 {
				t.Errorf("%s/%s: no executions enumerated", f.Name, pair.name)
			}
		}
	}
}
