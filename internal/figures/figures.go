// Package figures encodes every example program of the paper
// (Figures 1–13) together with the transformation results the paper
// reports, as machine-checkable before/after pairs. They serve as the
// golden corpus for tests, as the programs behind cmd/figures, and as
// benchmark subjects (one benchmark per figure in the repository
// root's bench_test.go).
//
// The 1994 scan renders the figure drawings imperfectly, so each
// program is reconstructed from the paper's prose, which describes
// every example precisely (which assignments sink where, what gets
// eliminated on which branch, which synthetic nodes materialize). Two
// presentational liberties of the paper's drawings are normalized:
//
//   - The algorithm's own fixpoint relocates assignments to the entry
//     of a successor along straight-line chains (N-INSERT fires on the
//     block holding the blocking use). The paper draws some results
//     with the assignment at the chain's upstream block; the paper's
//     Section 5.4 stability condition agrees with the equations, not
//     the drawings, and the expected graphs here record the equations'
//     fixpoint. The two placements lie on the same paths and are
//     cost-identical under Definition 3.6.
//   - Synthetic nodes that remain empty are removed again (the paper
//     draws them dashed); ones that received code (S4,5 in Figure 6)
//     stay.
package figures

import (
	"fmt"

	"pdce/internal/cfg"
	"pdce/internal/parser"
)

// Figure is one paper example: an input program, the expected result
// of the transformation the paper applies to it, and commentary.
type Figure struct {
	// Num is the paper's figure number of the *input* drawing.
	Num int
	// Name is a short identifier, e.g. "fig01".
	Name string
	// Title summarizes what the figure demonstrates.
	Title string
	// Source is the input program in the low-level CFG language.
	Source string
	// ExpectedPDE is the expected result of running pde, in the
	// CFG language; empty when the figure does not define a pde
	// result (Figure 13 is block-local only).
	ExpectedPDE string
	// ExpectedPFE is the expected pfe result when the figure
	// distinguishes it from pde (Figures 9 and 12); empty means
	// "same as ExpectedPDE".
	ExpectedPFE string
	// Notes records how the figure was reconstructed and what the
	// paper says about it.
	Notes string
}

// Graph parses the figure's input program.
func (f *Figure) Graph() *cfg.Graph { return parser.MustParseCFG(f.Source) }

// PDEGraph parses the expected pde result, or nil if none is defined.
func (f *Figure) PDEGraph() *cfg.Graph {
	if f.ExpectedPDE == "" {
		return nil
	}
	return parser.MustParseCFG(f.ExpectedPDE)
}

// PFEGraph parses the expected pfe result (falling back to the pde
// expectation), or nil if neither is defined.
func (f *Figure) PFEGraph() *cfg.Graph {
	if f.ExpectedPFE != "" {
		return parser.MustParseCFG(f.ExpectedPFE)
	}
	return f.PDEGraph()
}

// All returns every figure, ordered by figure number.
func All() []*Figure {
	return []*Figure{
		Fig01(), Fig03(), Fig05(), Fig07(), Fig08(),
		Fig09(), Fig10(), Fig11(), Fig12(), Fig13(),
	}
}

// ByNum returns the figure whose input drawing has the given paper
// number.
func ByNum(num int) (*Figure, error) {
	for _, f := range All() {
		if f.Num == num {
			return f, nil
		}
	}
	return nil, fmt.Errorf("figures: no figure %d (have 1,3,5,7,8,9,10,11,12,13)", num)
}

// Fig01 is the simple motivating example (Figure 1 → Figure 2):
// y := a+b in node 1 is dead on the branch through node 3 (which
// redefines y) and alive on the branch through node 4. Sinking moves
// it to both branch targets; dead code elimination then removes the
// copy at node 3, leaving a single instance on the path that needs it.
func Fig01() *Figure {
	return &Figure{
		Num:   1,
		Name:  "fig01",
		Title: "partially dead assignment removed by sinking + dce",
		Source: `graph "fig1"
node 1 { y := a+b }
node 2 {}
node 3 { y := c }
node 4 {}
node 5 { out(x+y) }
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 e
`,
		ExpectedPDE: `graph "fig1"
node 1 {}
node 2 {}
node 3 { y := c }
node 4 { y := a+b }
node 5 { out(x+y) }
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 e
`,
		Notes: "Figure 2 of the paper. The instance on the live branch " +
			"lands in node 4 (X-INSERT at its exit: the join node 5 is " +
			"reached by the non-delayed branch through node 3); the " +
			"instance inserted at node 3's entry is immediately dead " +
			"and eliminated.",
	}
}

// Fig03 is the second-order-effects example (Figure 3 → Figure 4): a
// dependent pair inside a loop — the first assignment defines an
// operand of the second, so neither standard loop-invariant code
// motion nor a single sinking pass can clean the loop. Removing the
// second assignment from the loop (sinking-elimination) suspends the
// blockade of the first, which then leaves the loop as well
// (sinking-sinking); a final dce round clears the transient copy on
// the loop's back edge (elimination after sinking).
func Fig03() *Figure {
	return &Figure{
		Num:   3,
		Name:  "fig03",
		Title: "second-order effects: dependent pair leaves a loop",
		Source: `graph "fig3"
node 1 {}
node 2 {
  c := y-e
  x := c+1
}
node 3 {}
node 4 {}
node 7 { out(c) }
node 8 { out(x) }
node 9 {}
edge s 1
edge 1 2
edge 2 3
edge 3 2
edge 3 4
edge 4 7
edge 4 8
edge 7 9
edge 8 9
edge 9 e
`,
		ExpectedPDE: `graph "fig3"
node 1 {}
node 2 {}
node 3 {}
node 4 {}
node 7 {
  c := y-e
  out(c)
}
node 8 {
  c := y-e
  x := c+1
  out(x)
}
node 9 {}
edge s 1
edge 1 2
edge 2 3
edge 3 2
edge 3 4
edge 4 7
edge 4 8
edge 7 9
edge 8 9
edge 9 e
`,
		Notes: "Figure 4 of the paper: the loop {2,3} ends up empty; " +
			"each post-loop branch computes exactly what it consumes. " +
			"Node numbering follows the paper's drawing (7: out(c), " +
			"8: out(x)). Reconstructed pair: c := y-e; x := c+1 (the " +
			"prose requires the first instruction to define an operand " +
			"of the second).",
	}
}

// Fig05 is the loop-treatment example (Figure 5 → Figure 6): the
// assignment x := a+b of node 1 is moved across an irreducible loop
// construct (nodes 2/3, entered from node 1 at both), eliminated as
// dead code on the branch through node 6 (which redefines x), and
// materialized in the synthetic node S4,5 on the critical edge from
// node 4 to node 5 — where it remains partially dead, because pushing
// it further would move it into the second loop (node 7: y := y+x)
// and impair looping executions.
func Fig05() *Figure {
	return &Figure{
		Num:   5,
		Name:  "fig05",
		Title: "irreducible loop crossed; fatal motion into second loop avoided",
		Source: `graph "fig5"
node 1 { x := a+b }
node 2 {}
node 3 {}
node 4 {}
node 5 {}
node 6 { x := c+d }
node 7 { y := y+x }
node 8 { out(y) }
node 9 { out(x) }
node 10 {}
edge s 1
edge 1 2
edge 1 3
edge 2 3
edge 3 2
edge 3 4
edge 4 5
edge 4 6
edge 5 7
edge 5 8
edge 6 9
edge 7 5
edge 8 9
edge 9 10
edge 10 e
`,
		ExpectedPDE: `graph "fig5"
node 1 {}
node 2 {}
node 3 {}
node 4 {}
node 5 {}
node 6 { x := c+d }
node 7 { y := y+x }
node 8 { out(y) }
node 9 { out(x) }
node 10 {}
node "S4,5" synthetic { x := a+b }
edge s 1
edge 1 2
edge 1 3
edge 2 3
edge 3 2
edge 3 4
edge 4 "S4,5"
edge 4 6
edge "S4,5" 5
edge 5 7
edge 5 8
edge 6 9
edge 7 5
edge 8 9
edge 9 10
edge 10 e
`,
		Notes: "Figure 6 of the paper: only the synthetic node S4,5 " +
			"materializes (it received the sunk assignment); the other " +
			"split synthetic nodes stay empty and are removed again. " +
			"The assignment in S4,5 is still partially dead (dead when " +
			"the second loop exits through node 8 without reading x " +
			"via out(y)... it is live via y:=y+x and out(x)), and the " +
			"algorithm correctly refuses to chase it into the loop.",
	}
}

// Fig07 is the m-to-n sinking example (Figure 7): a := a+1 occurs in
// both predecessors (nodes 1 and 2) of a join; it is live through the
// branch using a and dead through the other. Only the simultaneous
// treatment of both occurrences allows the elimination — removing one
// occurrence alone would leave the insertion unjustified on the other
// path (Feigen et al.'s one-occurrence-at-a-time scheme must give up).
func Fig07() *Figure {
	return &Figure{
		Num:   7,
		Name:  "fig07",
		Title: "m-to-n sinking: simultaneous treatment of several occurrences",
		Source: `graph "fig7"
node 0 {}
node 1 { a := a+1 }
node 2 { a := a+1 }
node 3 {}
node 4 {
  y := a+b
  out(x+y)
}
node 5 { out(b) }
node 6 {}
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 4
edge 3 5
edge 4 6
edge 5 6
edge 6 e
`,
		ExpectedPDE: `graph "fig7"
node 0 {}
node 1 {}
node 2 {}
node 3 {}
node 4 {
  a := a+1
  y := a+b
  out(x+y)
}
node 5 { out(b) }
node 6 {}
edge s 0
edge 0 1
edge 0 2
edge 1 3
edge 2 3
edge 3 4
edge 3 5
edge 4 6
edge 5 6
edge 6 e
`,
		Notes: "Two occurrences sink to one insertion point (2-to-1): " +
			"both candidates are removed and a single instance lands " +
			"before the use in node 4; the instance that would continue " +
			"through node 5 falls off the end dead. Reconstructed from " +
			"the paper's prose; the drawing's out(a)/out(a+b) variants " +
			"exercise the same simultaneity.",
	}
}

// Fig08 is the critical-edge example (Figure 8): x := a+b at node 1 is
// partially dead with respect to the redefinition at node 3, but
// cannot be moved to node 2 directly — node 2 has another predecessor,
// so the motion would impair the path entering node 2 from there. The
// synthetic node S1,2 on the critical edge (1,2) receives it instead.
func Fig08() *Figure {
	return &Figure{
		Num:   8,
		Name:  "fig08",
		Title: "critical edge split enables safe elimination",
		Source: `graph "fig8"
node 0 {}
node p {}
node 1 { x := a+b }
node 2 { out(x) }
node 3 {
  x := c
  out(x)
}
node 4 {}
edge s 0
edge 0 1
edge 0 p
edge p 2
edge 1 2
edge 1 3
edge 2 4
edge 3 4
edge 4 e
`,
		ExpectedPDE: `graph "fig8"
node 0 {}
node p {}
node 1 {}
node 2 { out(x) }
node 3 {
  x := c
  out(x)
}
node 4 {}
node "S1,2" synthetic { x := a+b }
edge s 0
edge 0 1
edge 0 p
edge p 2
edge 1 "S1,2"
edge "S1,2" 2
edge 1 3
edge 2 4
edge 3 4
edge 4 e
`,
		Notes: "Figure 8(b) of the paper: the synthetic node S1,2 " +
			"materializes with the sunk assignment; on the branch " +
			"through node 3 the assignment is dead (x redefined) and " +
			"disappears. The extra predecessor p of node 2 is what " +
			"makes the edge (1,2) critical.",
	}
}

// Fig09 is the faint-but-not-dead example (Figure 9): the loop
// assignment x := x+1 uses its own left-hand side and nothing else
// ever reads x, so x is faint but not dead. Dead code elimination
// (and hence pde) must leave it; faint code elimination (pfe) removes
// it.
func Fig09() *Figure {
	return &Figure{
		Num:   9,
		Name:  "fig09",
		Title: "faint but not dead assignment",
		Source: `graph "fig9"
node 1 {}
node 2 {}
node 3 { x := x+1 }
node 4 {}
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 2
edge 4 e
`,
		ExpectedPDE: `graph "fig9"
node 1 {}
node 2 {}
node 3 { x := x+1 }
node 4 {}
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 2
edge 4 e
`,
		ExpectedPFE: `graph "fig9"
node 1 {}
node 2 {}
node 3 {}
node 4 {}
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 2
edge 4 e
`,
		Notes: "Taken from Horwitz/Demers/Teitelbaum via the paper: " +
			"the only use of x is the right-hand side of the faint " +
			"assignment itself, so pde is a no-op here while pfe " +
			"empties the loop body.",
	}
}

// Fig10 is the sinking-sinking example (Figure 10): without first
// sinking a := c out of node 2, the assignment y := a+b of node 1 can
// sink at most to node 2's entry (a := c corrupts its operand).
// Anticipating the sinking of a := c down to the use in x := a+c, the
// first assignment passes through and reaches both branch targets,
// where dce removes the copy killed by y := d.
func Fig10() *Figure {
	return &Figure{
		Num:   10,
		Name:  "fig10",
		Title: "sinking-sinking effect",
		Source: `graph "fig10"
node 1 { y := a+b }
node 2 { a := c }
node 3 { y := d }
node 4 {}
node 5 { x := a+c }
node 6 { out(x+y) }
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 6
edge 6 e
`,
		ExpectedPDE: `graph "fig10"
node 1 {}
node 2 {}
node 3 { y := d }
node 4 { y := a+b }
node 5 {}
node 6 {
  a := c
  x := a+c
  out(x+y)
}
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 6
edge 6 e
`,
		Notes: "Figure 10(b) of the paper: y := a+b survives only on " +
			"the branch that does not redefine y; a := c and x := a+c " +
			"sink down the straight-line chain to the block holding " +
			"the blocking use out(x+y) (the drawing leaves them one " +
			"block higher — same paths, same cost).",
	}
}

// Fig11 is the elimination-sinking example (Figure 11): neither
// assignment can sink initially (a := c blocks y := a+b, and out-uses
// block a := c... in fact a := c is simply dead). Eliminating the dead
// a := c unblocks y := a+b, which then sinks to both branches so the
// copy killed by y := d can be eliminated.
func Fig11() *Figure {
	return &Figure{
		Num:   11,
		Name:  "fig11",
		Title: "elimination-sinking effect",
		Source: `graph "fig11"
node 1 { y := a+b }
node 2 { a := c }
node 3 {}
node 4 {
  y := d
  out(y)
}
node 5 { out(y) }
node 6 {}
edge s 1
edge 1 2
edge 2 3
edge 3 4
edge 3 5
edge 4 6
edge 5 6
edge 6 e
`,
		ExpectedPDE: `graph "fig11"
node 1 {}
node 2 {}
node 3 {}
node 4 {
  y := d
  out(y)
}
node 5 {
  y := a+b
  out(y)
}
node 6 {}
edge s 1
edge 1 2
edge 2 3
edge 3 4
edge 3 5
edge 4 6
edge 5 6
edge 6 e
`,
		Notes: "The dead assignment a := c was the only blockade of " +
			"y := a+b; its elimination is what enables the sinking — " +
			"the elimination-sinking second-order effect.",
	}
}

// Fig12 is the elimination-elimination example (Figure 12): y := a+b
// at node 4 is dead because the join redefines y before the use, and
// only its removal makes a := c at node 1 dead in turn. For pde this
// is a second-order effect (two dce rounds); for pfe both assignments
// are faint simultaneously and fall in a single fce step.
func Fig12() *Figure {
	return &Figure{
		Num:   12,
		Name:  "fig12",
		Title: "elimination-elimination effect (first-order for pfe)",
		Source: `graph "fig12"
node 1 { a := c }
node 2 {}
node 3 {}
node 4 { y := a+b }
node 5 { y := c+d }
node 6 { out(y) }
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 6
edge 6 e
`,
		ExpectedPDE: `graph "fig12"
node 1 {}
node 2 {}
node 3 {}
node 4 {}
node 5 {}
node 6 {
  y := c+d
  out(y)
}
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 6
edge 6 e
`,
		Notes: "Both useless assignments disappear; y := c+d sinks " +
			"down the chain to its use. For pde the effect is second " +
			"order: dce's first round removes only y := a+b (a := c " +
			"is still 'used' by it), and a := c falls in the next " +
			"step — in this implementation by sinking off the end of " +
			"the program once unblocked. pfe sees both as faint " +
			"simultaneously — the paper's point that the effect is " +
			"first-order for faintness.",
	}
}

// Fig13 demonstrates the block-local sinking-candidate predicate
// (Figure 13): in a block containing several occurrences of y := a+b,
// at most the last can be a candidate, and a trailing modification of
// an operand (a := d) disqualifies even that one. The figure defines
// no global transformation; tests exercise analysis.ComputeLocals on
// the two block variants directly.
func Fig13() *Figure {
	return &Figure{
		Num:   13,
		Name:  "fig13",
		Title: "sinking candidates within a basic block",
		Source: `graph "fig13"
node 1 {
  y := a+b
  a := c
  x := 3*y
  y := a+b
  a := d
}
node 2 { out(x+y); out(a) }
edge s 1
edge 1 2
edge 2 e
`,
		Notes: "Block variant with the trailing a := d: the second " +
			"y := a+b is blocked by it, so the block has no y := a+b " +
			"candidate; a := d itself is the only candidate. Dropping " +
			"the trailing assignment makes the last y := a+b the " +
			"candidate — exactly the paper's Figure 13 illustration.",
	}
}
