package parser_test

import (
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/core"
	"pdce/internal/parser"
)

// FuzzParseSource: the WHILE-language parser must never panic; on
// success the lowered graph must be valid and its Format output must
// re-parse.
func FuzzParseSource(f *testing.F) {
	seeds := []string{
		"x := a + b\nout(x)",
		"if * { out(1) } else { out(2) }",
		"while i > 0 { i := i - 1 }\nout(i)",
		"do { x := x + 1 } while x < 10\nout(x)",
		"if a > 0 { while * { skip } }\nout(a)",
		"x := -(a*b) % (c-4)\nout(x)",
		"// comment\nx := 1; y := 2\nout(x+y)",
		"}{",
		"x :=",
		"if { }",
		"do { } until *",
		"out(((((1)))))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := parser.ParseSource("fuzz", src)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if errs := cfg.Validate(g); len(errs) > 0 {
			t.Fatalf("accepted program is invalid: %v\n%q", errs, src)
		}
		back, err := parser.ParseCFG(g.Format())
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\n%s", err, g.Format())
		}
		if !cfg.Equal(g, back) {
			t.Fatalf("Format round trip changed the graph for %q", src)
		}
	})
}

// FuzzParseCFG: the low-level parser must never panic, and accepted
// graphs must survive the full pde pipeline without breaking
// invariants.
func FuzzParseCFG(f *testing.F) {
	seeds := []string{
		"graph \"g\"\nnode 1 { x := a+b }\nnode 2 { out(x) }\nedge s 1\nedge 1 2\nedge 2 e",
		"node 1 {}\nedge s 1\nedge 1 e",
		"node 1 { branch(x>0) }\nnode 2 {}\nnode 3 {}\nedge s 1\nedge 1 2\nedge 1 3\nedge 2 e\nedge 3 e",
		"node \"S4,5\" synthetic {}\nedge s \"S4,5\"\nedge \"S4,5\" e",
		"node 1 { x := x+1 }\nnode 2 {}\nedge s 2\nedge 2 1\nedge 1 2\nedge 2 e",
		"edge s e",
		"node e { skip }",
		"graph",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := parser.ParseCFG(src)
		if err != nil {
			return
		}
		// Accepted graphs are valid by construction...
		cfg.MustValidate(g)
		// ...and the optimizer must handle them.
		opt, _, err := core.PDE(g)
		if err != nil {
			t.Fatalf("pde failed on accepted graph: %v\n%s", err, g.Format())
		}
		cfg.MustValidate(opt)
	})
}

// FuzzParseExpr: expression parsing never panics; accepted expressions
// round-trip through String.
func FuzzParseExpr(f *testing.F) {
	for _, s := range []string{
		"a+b*c", "(a+b)*c", "-x", "1/0", "a%b==c", "a<b", "((a))", "-",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := parser.ParseExpr(src)
		if err != nil {
			return
		}
		back, err := parser.ParseExpr(e.String())
		if err != nil {
			t.Fatalf("String output %q does not re-parse: %v", e.String(), err)
		}
		if back.Key() != e.Key() {
			t.Fatalf("round trip changed %q -> %q", e.Key(), back.Key())
		}
	})
}
