package parser

import (
	"fmt"

	"pdce/internal/ir"
)

// tokens is a cursor over a lexed token stream shared by both parsers.
type tokens struct {
	list []Token
	pos  int
}

func (t *tokens) peek() Token { return t.list[t.pos] }

func (t *tokens) next() Token {
	tok := t.list[t.pos]
	if tok.Kind != TokEOF {
		t.pos++
	}
	return tok
}

func (t *tokens) errf(tok Token, format string, args ...any) error {
	return &Error{Line: tok.Line, Col: tok.Col, Msg: fmt.Sprintf(format, args...)}
}

func (t *tokens) expect(k TokKind) (Token, error) {
	tok := t.next()
	if tok.Kind != k {
		return tok, t.errf(tok, "expected %s, found %s %q", k, tok.Kind, tok.Text)
	}
	return tok, nil
}

// skipSemis consumes any separator tokens.
func (t *tokens) skipSemis() {
	for t.peek().Kind == TokSemi {
		t.next()
	}
}

// accept consumes the next token if it has kind k.
func (t *tokens) accept(k TokKind) bool {
	if t.peek().Kind == k {
		t.next()
		return true
	}
	return false
}

// Expression grammar (lowest to highest precedence):
//
//	expr    = additive [ relop additive ]      relop: == != < <= > >=
//	additive = multiplicative { (+|-) multiplicative }
//	multiplicative = unary { (*|/|%) unary }
//	unary   = [-] primary
//	primary = INT | IDENT | '(' expr ')'
//
// Exactly one relational operator is permitted per expression — there
// is no boolean algebra in the paper's term language.
func (t *tokens) parseExpr() (ir.Expr, error) {
	left, err := t.parseAdditive()
	if err != nil {
		return nil, err
	}
	if tok := t.peek(); tok.Kind == TokOp && isRelOp(tok.Text) {
		t.next()
		right, err := t.parseAdditive()
		if err != nil {
			return nil, err
		}
		return ir.Bin(ir.Op(tok.Text), left, right), nil
	}
	return left, nil
}

func isRelOp(s string) bool {
	switch s {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (t *tokens) parseAdditive() (ir.Expr, error) {
	left, err := t.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		tok := t.peek()
		if tok.Kind != TokOp || (tok.Text != "+" && tok.Text != "-") {
			return left, nil
		}
		t.next()
		right, err := t.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = ir.Bin(ir.Op(tok.Text), left, right)
	}
}

func (t *tokens) parseMultiplicative() (ir.Expr, error) {
	left, err := t.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		tok := t.peek()
		var op ir.Op
		switch {
		case tok.Kind == TokStar:
			op = ir.OpMul
		case tok.Kind == TokOp && (tok.Text == "/" || tok.Text == "%"):
			op = ir.Op(tok.Text)
		default:
			return left, nil
		}
		t.next()
		right, err := t.parseUnary()
		if err != nil {
			return nil, err
		}
		left = ir.Bin(op, left, right)
	}
}

func (t *tokens) parseUnary() (ir.Expr, error) {
	if tok := t.peek(); tok.Kind == TokOp && tok.Text == "-" {
		t.next()
		x, err := t.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold a negated literal into a constant so "-1" round-trips.
		if c, ok := x.(ir.Const); ok {
			return ir.C(-c.Value), nil
		}
		return ir.Unary{Op: ir.OpNeg, X: x}, nil
	}
	return t.parsePrimary()
}

func (t *tokens) parsePrimary() (ir.Expr, error) {
	tok := t.next()
	switch tok.Kind {
	case TokInt:
		return ir.C(tok.Int), nil
	case TokIdent:
		return ir.V(ir.Var(tok.Text)), nil
	case TokLParen:
		e, err := t.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := t.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, t.errf(tok, "expected expression, found %s %q", tok.Kind, tok.Text)
}

// ParseExpr parses a standalone expression (used by tests and tools).
func ParseExpr(src string) (ir.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	t := &tokens{list: toks}
	t.skipSemis()
	e, err := t.parseExpr()
	if err != nil {
		return nil, err
	}
	t.skipSemis()
	if tok := t.peek(); tok.Kind != TokEOF {
		return nil, t.errf(tok, "unexpected trailing %s %q", tok.Kind, tok.Text)
	}
	return e, nil
}

// parseSimpleStmt parses one of the paper's statement forms:
//
//	x := expr
//	out(expr)
//	branch(expr)
//	skip
func (t *tokens) parseSimpleStmt() (ir.Stmt, error) {
	tok := t.next()
	if tok.Kind != TokIdent {
		return nil, t.errf(tok, "expected statement, found %s %q", tok.Kind, tok.Text)
	}
	switch tok.Text {
	case "skip":
		return ir.Skip{}, nil
	case "out", "branch":
		if _, err := t.expect(TokLParen); err != nil {
			return nil, err
		}
		e, err := t.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := t.expect(TokRParen); err != nil {
			return nil, err
		}
		if tok.Text == "out" {
			return ir.Out{Arg: e}, nil
		}
		return ir.Branch{Cond: e}, nil
	default:
		if _, err := t.expect(TokAssign); err != nil {
			return nil, err
		}
		e, err := t.parseExpr()
		if err != nil {
			return nil, err
		}
		return ir.Assign{LHS: ir.Var(tok.Text), RHS: e}, nil
	}
}
