package parser

import (
	"fmt"

	"pdce/internal/cfg"
)

// ParseCFG reads the low-level flow-graph language:
//
//	graph "name"            // optional header
//	node 1 {
//	  y := a+b
//	  out(x+y)
//	}
//	node S4.5 synthetic {}  // optional 'synthetic' marker
//	edge s 1
//	edge 1 e
//
// Node labels are bare identifiers, integers, or quoted strings. The
// start and end nodes exist implicitly under the reserved labels "s"
// and "e" and may not carry statements. Statements inside a node body
// are separated by newlines or semicolons. The resulting graph is
// validated (cfg.Validate) before being returned.
func ParseCFG(src string) (*cfg.Graph, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	t := &tokens{list: toks}
	p := &cfgParser{t: t}
	return p.parse()
}

// MustParseCFG is ParseCFG that panics on error, for tests and
// embedded figure programs.
func MustParseCFG(src string) *cfg.Graph {
	g, err := ParseCFG(src)
	if err != nil {
		panic("parser: " + err.Error())
	}
	return g
}

type cfgParser struct {
	t *tokens
	g *cfg.Graph
}

func (p *cfgParser) parse() (*cfg.Graph, error) {
	p.t.skipSemis()
	name := "G"
	if tok := p.t.peek(); tok.Kind == TokIdent && tok.Text == "graph" {
		p.t.next()
		nameTok := p.t.next()
		switch nameTok.Kind {
		case TokString, TokIdent, TokInt:
			name = nameTok.Text
		default:
			return nil, p.t.errf(nameTok, "expected graph name, found %s", nameTok.Kind)
		}
	}
	p.g = cfg.New(name)
	type pendingEdge struct {
		from, to string
		tok      Token
	}
	var edges []pendingEdge
	for {
		p.t.skipSemis()
		tok := p.t.peek()
		if tok.Kind == TokEOF {
			break
		}
		if tok.Kind != TokIdent {
			return nil, p.t.errf(tok, "expected 'node' or 'edge', found %s %q", tok.Kind, tok.Text)
		}
		switch tok.Text {
		case "node":
			p.t.next()
			if err := p.parseNode(); err != nil {
				return nil, err
			}
		case "edge":
			p.t.next()
			from, ftok, err := p.parseLabel()
			if err != nil {
				return nil, err
			}
			to, _, err := p.parseLabel()
			if err != nil {
				return nil, err
			}
			edges = append(edges, pendingEdge{from: from, to: to, tok: ftok})
		default:
			return nil, p.t.errf(tok, "expected 'node' or 'edge', found %q", tok.Text)
		}
	}
	for _, e := range edges {
		from, ok := p.g.NodeByLabel(e.from)
		if !ok {
			return nil, p.t.errf(e.tok, "edge references undeclared node %q", e.from)
		}
		to, ok := p.g.NodeByLabel(e.to)
		if !ok {
			return nil, p.t.errf(e.tok, "edge references undeclared node %q", e.to)
		}
		if p.g.HasEdge(from, to) {
			return nil, p.t.errf(e.tok, "duplicate edge %s -> %s", e.from, e.to)
		}
		p.g.AddEdge(from, to)
	}
	if errs := cfg.Validate(p.g); len(errs) > 0 {
		return nil, fmt.Errorf("invalid graph %q: %s", name, errs[0])
	}
	return p.g, nil
}

// parseLabel reads a node label: identifier, integer, or quoted string.
func (p *cfgParser) parseLabel() (string, Token, error) {
	tok := p.t.next()
	switch tok.Kind {
	case TokIdent, TokInt, TokString:
		return tok.Text, tok, nil
	}
	return "", tok, p.t.errf(tok, "expected node label, found %s %q", tok.Kind, tok.Text)
}

func (p *cfgParser) parseNode() error {
	label, ltok, err := p.parseLabel()
	if err != nil {
		return err
	}
	synthetic := false
	if tok := p.t.peek(); tok.Kind == TokIdent && tok.Text == "synthetic" {
		p.t.next()
		synthetic = true
	}
	if _, err := p.t.expect(TokLBrace); err != nil {
		return err
	}
	var node *cfg.Node
	switch label {
	case "s", "e":
		// The start and end blocks exist implicitly; allow the
		// (empty) redeclaration so Format output round-trips.
		n, _ := p.g.NodeByLabel(label)
		node = n
	default:
		if _, dup := p.g.NodeByLabel(label); dup {
			return p.t.errf(ltok, "duplicate node %q", label)
		}
		node = p.g.AddNode(label)
	}
	node.Synthetic = synthetic
	for {
		p.t.skipSemis()
		if p.t.accept(TokRBrace) {
			break
		}
		if p.t.peek().Kind == TokEOF {
			return p.t.errf(p.t.peek(), "unterminated node body for %q", label)
		}
		s, err := p.t.parseSimpleStmt()
		if err != nil {
			return err
		}
		if label == "s" || label == "e" {
			return p.t.errf(ltok, "node %q must be empty (paper start/end nodes carry skip)", label)
		}
		node.Stmts = append(node.Stmts, s)
	}
	return nil
}
