package parser

import (
	"fmt"

	"pdce/internal/cfg"
	"pdce/internal/ir"
)

// The structured WHILE-language:
//
//	x := a + b
//	out(x)
//	if x < 10 { ... } else { ... }   // else optional
//	if * { ... } else { ... }        // nondeterministic branch
//	while x > 0 { ... }
//	while * { ... }                  // nondeterministic loop
//
// Conditions written `*` lower to blocks without a Branch terminator —
// the paper's base model of nondeterministic branching. Concrete
// conditions lower to ir.Branch statements, whose operands are relevant
// uses (footnote 2 of the paper).

// SrcStmt is a node of the WHILE-language AST.
type SrcStmt interface{ isSrcStmt() }

// SrcSimple wraps a straight-line statement.
type SrcSimple struct{ S ir.Stmt }

// SrcIf is a two-way conditional; Cond == nil means nondeterministic.
type SrcIf struct {
	Cond ir.Expr
	Then []SrcStmt
	Else []SrcStmt
}

// SrcWhile is a pre-test loop; Cond == nil means nondeterministic.
type SrcWhile struct {
	Cond ir.Expr
	Body []SrcStmt
}

// SrcDoWhile is a post-test loop (`do { ... } while cond`); the body
// executes at least once. Cond == nil means nondeterministic. The
// distinction matters for the paper's algorithm: an assignment can
// only sink out of a loop whose body is guaranteed to have executed
// (Definition 3.2's justification condition) — the paper's Figure 3
// loop has exactly this shape.
type SrcDoWhile struct {
	Cond ir.Expr
	Body []SrcStmt
}

func (SrcSimple) isSrcStmt()  {}
func (SrcIf) isSrcStmt()      {}
func (SrcWhile) isSrcStmt()   {}
func (SrcDoWhile) isSrcStmt() {}

// ParseSource parses a WHILE-language program and lowers it to a flow
// graph named name. The graph is validated before being returned.
func ParseSource(name, src string) (*cfg.Graph, error) {
	stmts, err := ParseSourceAST(src)
	if err != nil {
		return nil, err
	}
	return Lower(name, stmts)
}

// MustParseSource is ParseSource that panics on error.
func MustParseSource(name, src string) *cfg.Graph {
	g, err := ParseSource(name, src)
	if err != nil {
		panic("parser: " + err.Error())
	}
	return g
}

// ParseSourceAST parses a WHILE-language program to its AST.
func ParseSourceAST(src string) ([]SrcStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	t := &tokens{list: toks}
	stmts, err := parseStmtList(t, TokEOF)
	if err != nil {
		return nil, err
	}
	return stmts, nil
}

// parseStmtList parses statements until the given closing token kind,
// which is consumed.
func parseStmtList(t *tokens, until TokKind) ([]SrcStmt, error) {
	var out []SrcStmt
	for {
		t.skipSemis()
		tok := t.peek()
		if tok.Kind == until {
			t.next()
			return out, nil
		}
		if tok.Kind == TokEOF {
			return nil, t.errf(tok, "unexpected end of input (missing %s?)", until)
		}
		s, err := parseSrcStmt(t)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func parseSrcStmt(t *tokens) (SrcStmt, error) {
	tok := t.peek()
	if tok.Kind == TokIdent {
		switch tok.Text {
		case "if":
			t.next()
			return parseIf(t)
		case "while":
			t.next()
			return parseWhile(t)
		case "do":
			t.next()
			return parseDoWhile(t)
		case "branch":
			return nil, t.errf(tok, "branch(...) is not a source statement; use if/while")
		}
	}
	s, err := t.parseSimpleStmt()
	if err != nil {
		return nil, err
	}
	return SrcSimple{S: s}, nil
}

// parseCond parses a condition: `*` for nondeterministic (returns nil)
// or an expression.
func parseCond(t *tokens) (ir.Expr, error) {
	if t.peek().Kind == TokStar {
		t.next()
		return nil, nil
	}
	return t.parseExpr()
}

func parseIf(t *tokens) (SrcStmt, error) {
	cond, err := parseCond(t)
	if err != nil {
		return nil, err
	}
	if _, err := t.expect(TokLBrace); err != nil {
		return nil, err
	}
	thenStmts, err := parseStmtList(t, TokRBrace)
	if err != nil {
		return nil, err
	}
	var elseStmts []SrcStmt
	t.skipSemis()
	if tok := t.peek(); tok.Kind == TokIdent && tok.Text == "else" {
		t.next()
		if _, err := t.expect(TokLBrace); err != nil {
			return nil, err
		}
		elseStmts, err = parseStmtList(t, TokRBrace)
		if err != nil {
			return nil, err
		}
	}
	return SrcIf{Cond: cond, Then: thenStmts, Else: elseStmts}, nil
}

func parseWhile(t *tokens) (SrcStmt, error) {
	cond, err := parseCond(t)
	if err != nil {
		return nil, err
	}
	if _, err := t.expect(TokLBrace); err != nil {
		return nil, err
	}
	body, err := parseStmtList(t, TokRBrace)
	if err != nil {
		return nil, err
	}
	return SrcWhile{Cond: cond, Body: body}, nil
}

func parseDoWhile(t *tokens) (SrcStmt, error) {
	if _, err := t.expect(TokLBrace); err != nil {
		return nil, err
	}
	body, err := parseStmtList(t, TokRBrace)
	if err != nil {
		return nil, err
	}
	t.skipSemis()
	kw := t.next()
	if kw.Kind != TokIdent || kw.Text != "while" {
		return nil, t.errf(kw, "expected 'while' after do-body, found %q", kw.Text)
	}
	cond, err := parseCond(t)
	if err != nil {
		return nil, err
	}
	return SrcDoWhile{Cond: cond, Body: body}, nil
}

// Lower converts a WHILE-language AST to a flow graph. Every
// straight-line run of simple statements becomes one basic block;
// conditionals and loops introduce the usual diamond and header/body
// shapes. The first successor of a conditional block is the
// branch-taken (then/body) target.
func Lower(name string, stmts []SrcStmt) (*cfg.Graph, error) {
	lw := &lowerer{g: cfg.New(name)}
	entry := lw.newBlock()
	lw.g.AddEdge(lw.g.Start, entry)
	exit := lw.lowerList(stmts, entry)
	lw.g.AddEdge(exit, lw.g.End)
	if errs := cfg.Validate(lw.g); len(errs) > 0 {
		return nil, fmt.Errorf("lowering produced invalid graph: %s", errs[0])
	}
	return lw.g, nil
}

type lowerer struct {
	g   *cfg.Graph
	seq int
}

func (lw *lowerer) newBlock() *cfg.Node {
	lw.seq++
	return lw.g.AddNode(fmt.Sprintf("b%d", lw.seq))
}

// lowerList lowers stmts starting in block cur and returns the block
// where control continues afterwards.
func (lw *lowerer) lowerList(stmts []SrcStmt, cur *cfg.Node) *cfg.Node {
	for _, s := range stmts {
		switch st := s.(type) {
		case SrcSimple:
			cur.Stmts = append(cur.Stmts, st.S)
		case SrcIf:
			cur = lw.lowerIf(st, cur)
		case SrcWhile:
			cur = lw.lowerWhile(st, cur)
		case SrcDoWhile:
			cur = lw.lowerDoWhile(st, cur)
		}
	}
	return cur
}

func (lw *lowerer) lowerIf(st SrcIf, cur *cfg.Node) *cfg.Node {
	if st.Cond != nil {
		cur.Stmts = append(cur.Stmts, ir.Branch{Cond: st.Cond})
	}
	thenEntry := lw.newBlock()
	elseEntry := lw.newBlock()
	join := lw.newBlock()
	lw.g.AddEdge(cur, thenEntry) // first successor: branch taken
	lw.g.AddEdge(cur, elseEntry)
	thenExit := lw.lowerList(st.Then, thenEntry)
	elseExit := lw.lowerList(st.Else, elseEntry)
	lw.g.AddEdge(thenExit, join)
	lw.g.AddEdge(elseExit, join)
	return join
}

func (lw *lowerer) lowerWhile(st SrcWhile, cur *cfg.Node) *cfg.Node {
	// A dedicated header keeps the loop back edge non-critical even
	// when cur already branches.
	header := lw.newBlock()
	lw.g.AddEdge(cur, header)
	if st.Cond != nil {
		header.Stmts = append(header.Stmts, ir.Branch{Cond: st.Cond})
	}
	bodyEntry := lw.newBlock()
	exit := lw.newBlock()
	lw.g.AddEdge(header, bodyEntry) // first successor: loop taken
	lw.g.AddEdge(header, exit)
	bodyExit := lw.lowerList(st.Body, bodyEntry)
	// A `while` whose body ends by re-entering the same header via
	// another construct would need latching; the body exit always
	// latches back to the header here.
	lw.g.AddEdge(bodyExit, header)
	return exit
}

func (lw *lowerer) lowerDoWhile(st SrcDoWhile, cur *cfg.Node) *cfg.Node {
	bodyEntry := lw.newBlock()
	lw.g.AddEdge(cur, bodyEntry)
	bodyExit := lw.lowerList(st.Body, bodyEntry)
	// Dedicated latch holding the post-test; first successor is the
	// back edge (loop taken).
	latch := lw.newBlock()
	if st.Cond != nil {
		latch.Stmts = append(latch.Stmts, ir.Branch{Cond: st.Cond})
	}
	exit := lw.newBlock()
	lw.g.AddEdge(bodyExit, latch)
	lw.g.AddEdge(latch, bodyEntry)
	lw.g.AddEdge(latch, exit)
	return exit
}
