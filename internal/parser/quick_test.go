package parser_test

import (
	"math/rand"
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/ir"
	"pdce/internal/parser"
	"pdce/internal/progen"
)

// genExpr builds arbitrary expression trees for round-trip testing.
func genExpr(r *rand.Rand, depth int) ir.Expr {
	if depth == 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return ir.C(int64(r.Intn(200) - 100))
		}
		vars := []ir.Var{"a", "b", "c", "x", "y"}
		return ir.V(vars[r.Intn(len(vars))])
	}
	if r.Intn(6) == 0 {
		// Negation of a bare constant is not parser-producible
		// (the grammar folds it into the literal), so negate
		// non-constant operands only.
		x := genExpr(r, depth-1)
		if _, isConst := x.(ir.Const); !isConst {
			return ir.Unary{Op: ir.OpNeg, X: x}
		}
	}
	// Relational operators only at the root (the grammar permits a
	// single relation per expression).
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMod}
	return ir.Bin(ops[r.Intn(len(ops))], genExpr(r, depth-1), genExpr(r, depth-1))
}

// TestExprPrintParseRoundTrip: String() output of random expression
// trees re-parses to the identical tree.
func TestExprPrintParseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		e := genExpr(r, 5)
		if i%4 == 0 { // sprinkle relations at the root
			rel := []ir.Op{ir.OpLt, ir.OpLe, ir.OpEq, ir.OpNe, ir.OpGt, ir.OpGe}
			e = ir.Bin(rel[r.Intn(len(rel))], e, genExpr(r, 3))
		}
		back, err := parser.ParseExpr(e.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", e.String(), err)
		}
		if !ir.ExprEqual(e, back) {
			t.Fatalf("round trip changed %q: %q vs %q", e.String(), e.Key(), back.Key())
		}
	}
}

// TestGraphFormatParseRoundTrip: random generated programs survive
// Format -> ParseCFG -> Format unchanged.
func TestGraphFormatParseRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		params := progen.Params{Seed: seed, Stmts: 50, LoopProb: 0.15, BranchProb: 0.25, CondProb: 0.7}
		if seed%3 == 0 {
			params.Irreducible = true
		}
		g := progen.Generate(params)
		text := g.Format()
		back, err := parser.ParseCFG(text)
		if err != nil {
			t.Fatalf("seed %d: re-parse failed: %v", seed, err)
		}
		if !cfg.Equal(g, back) {
			t.Fatalf("seed %d: round trip changed graph", seed)
		}
		if back.Format() != text {
			t.Fatalf("seed %d: Format not a fixpoint", seed)
		}
	}
}

// TestSourceLowerInterpretable: random WHILE-language programs built
// from a grammar-directed generator parse and lower to valid graphs.
func TestSourceLowerInterpretable(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		src := genSource(r, 3, 8)
		g, err := parser.ParseSource("gen", src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		cfg.MustValidate(g)
	}
}

// genSource emits a random syntactically valid WHILE program.
func genSource(r *rand.Rand, depth, stmts int) string {
	out := ""
	for i := 0; i < stmts; i++ {
		switch k := r.Intn(10); {
		case k < 5 || depth == 0:
			out += "x" + string(rune('0'+r.Intn(3))) + " := " + genExpr(r, 2).String() + "\n"
		case k < 6:
			out += "out(" + genExpr(r, 2).String() + ")\n"
		case k < 7:
			out += "skip\n"
		case k < 8:
			out += "if " + cond(r) + " {\n" + genSource(r, depth-1, stmts/2) + "} else {\n" + genSource(r, depth-1, stmts/2) + "}\n"
		case k < 9:
			out += "while " + cond(r) + " {\n" + genSource(r, depth-1, stmts/2) + "}\n"
		default:
			out += "do {\n" + genSource(r, depth-1, stmts/2) + "} while " + cond(r) + "\n"
		}
	}
	out += "out(x0)\n"
	return out
}

func cond(r *rand.Rand) string {
	if r.Intn(2) == 0 {
		return "*"
	}
	return "x" + string(rune('0'+r.Intn(3))) + " > " + genExpr(r, 1).String()
}
