// Package parser provides the two textual front ends of the
// repository:
//
//   - ParseCFG reads the low-level flow-graph language (explicit nodes
//     and edges) that cfg.(*Graph).Format emits, capable of expressing
//     arbitrary — including irreducible — branching structure, as the
//     paper's Figure 5 requires.
//   - ParseSource reads a small structured WHILE-language (assignments,
//     out, if/else, while, nondeterministic conditions written `*`) and
//     lowers it to a flow graph.
//
// Both share one lexer and one expression grammar.
package parser

import (
	"fmt"
	"strconv"
	"strings"
)

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString
	TokAssign // :=
	TokLBrace // {
	TokRBrace // }
	TokLParen // (
	TokRParen // )
	TokOp     // + - * / % == != < <= > >=
	TokStar   // * when used as nondeterministic condition
	TokSemi   // statement separator: ';' or newline(s)
	TokComma
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokString:
		return "string"
	case TokAssign:
		return "':='"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokOp:
		return "operator"
	case TokStar:
		return "'*'"
	case TokSemi:
		return "separator"
	case TokComma:
		return "','"
	}
	return "unknown token"
}

// Token is a lexed token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Int  int64 // valid when Kind == TokInt
	Line int
	Col  int
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []Token
}

// lex tokenizes src. Newlines and semicolons become TokSemi (runs are
// merged). Comments run from '//' or '#' to end of line.
func lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		if tok.Kind == TokSemi && len(l.toks) > 0 && l.toks[len(l.toks)-1].Kind == TokSemi {
			continue // merge separator runs
		}
		l.toks = append(l.toks, tok)
		if tok.Kind == TokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) next() (Token, error) {
	// Skip horizontal whitespace and comments.
	for {
		c, ok := l.peekByte()
		if !ok {
			return Token{Kind: TokEOF, Line: l.line, Col: l.col}, nil
		}
		if c == ' ' || c == '\t' || c == '\r' {
			l.advance()
			continue
		}
		if c == '#' || (c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/') {
			for {
				c, ok := l.peekByte()
				if !ok || c == '\n' {
					break
				}
				l.advance()
			}
			continue
		}
		break
	}
	line, col := l.line, l.col
	c := l.advance()
	mk := func(k TokKind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	switch {
	case c == '\n' || c == ';':
		return mk(TokSemi, string(c)), nil
	case c == '{':
		return mk(TokLBrace, "{"), nil
	case c == '}':
		return mk(TokRBrace, "}"), nil
	case c == '(':
		return mk(TokLParen, "("), nil
	case c == ')':
		return mk(TokRParen, ")"), nil
	case c == ',':
		return mk(TokComma, ","), nil
	case c == ':':
		if n, ok := l.peekByte(); ok && n == '=' {
			l.advance()
			return mk(TokAssign, ":="), nil
		}
		return Token{}, l.errf("unexpected ':' (expected ':=')")
	case c == '*':
		return mk(TokStar, "*"), nil
	case c == '+' || c == '-' || c == '/' || c == '%':
		return mk(TokOp, string(c)), nil
	case c == '=' || c == '!':
		if n, ok := l.peekByte(); ok && n == '=' {
			l.advance()
			return mk(TokOp, string(c)+"="), nil
		}
		return Token{}, l.errf("unexpected %q (expected %q)", string(c), string(c)+"=")
	case c == '<' || c == '>':
		if n, ok := l.peekByte(); ok && n == '=' {
			l.advance()
			return mk(TokOp, string(c)+"="), nil
		}
		return mk(TokOp, string(c)), nil
	case c == '"':
		var sb strings.Builder
		for {
			n, ok := l.peekByte()
			if !ok || n == '\n' {
				return Token{}, l.errf("unterminated string literal")
			}
			l.advance()
			if n == '"' {
				break
			}
			if n == '\\' {
				esc, ok := l.peekByte()
				if !ok {
					return Token{}, l.errf("unterminated escape in string literal")
				}
				l.advance()
				switch esc {
				case '"', '\\':
					sb.WriteByte(esc)
				case 'n':
					sb.WriteByte('\n')
				default:
					return Token{}, l.errf("unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(n)
		}
		return mk(TokString, sb.String()), nil
	case isDigit(c):
		start := l.pos - 1
		for {
			n, ok := l.peekByte()
			if !ok || !isDigit(n) {
				break
			}
			l.advance()
		}
		text := l.src[start:l.pos]
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Token{}, l.errf("integer literal %q out of range", text)
		}
		t := mk(TokInt, text)
		t.Int = v
		return t, nil
	case isIdentStart(c):
		start := l.pos - 1
		for {
			n, ok := l.peekByte()
			if !ok || !isIdentCont(n) {
				break
			}
			l.advance()
		}
		return mk(TokIdent, l.src[start:l.pos]), nil
	}
	return Token{}, l.errf("unexpected character %q", string(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '.' }
