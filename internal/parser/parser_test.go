package parser

import (
	"strings"
	"testing"

	"pdce/internal/cfg"
	"pdce/internal/ir"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("x := a + 42 // comment\nout(x)")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokKind{TokIdent, TokAssign, TokIdent, TokOp, TokInt, TokSemi, TokIdent, TokLParen, TokIdent, TokRParen, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: kind %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexMergesSeparators(t *testing.T) {
	toks, err := lex("a := 1\n\n\n;;\nb := 2")
	if err != nil {
		t.Fatal(err)
	}
	semis := 0
	for _, tok := range toks {
		if tok.Kind == TokSemi {
			semis++
		}
	}
	if semis != 1 {
		t.Errorf("separator runs not merged: %d semis", semis)
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks, err := lex(`graph "hello \"w\" \n x"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokString || toks[1].Text != "hello \"w\" \n x" {
		t.Errorf("string token = %q", toks[1].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{
		"x : y",         // lone colon
		"a = b",         // lone equals
		"a ! b",         // lone bang
		`"unclosed`,     // unterminated string
		"x := $y",       // bad character
		"x := \"a\\q\"", // unknown escape
	} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lex("a := 1\n  b := 2")
	if err != nil {
		t.Fatal(err)
	}
	// Token "b" is on line 2, column 3.
	var bTok *Token
	for i := range toks {
		if toks[i].Text == "b" {
			bTok = &toks[i]
		}
	}
	if bTok == nil || bTok.Line != 2 || bTok.Col != 3 {
		t.Errorf("position of b = %+v", bTok)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	cases := []struct{ src, key string }{
		{"a+b*c", "(a+(b*c))"},
		{"a*b+c", "((a*b)+c)"},
		{"(a+b)*c", "((a+b)*c)"},
		{"a-b-c", "((a-b)-c)"}, // left assoc
		{"a/b%c", "((a/b)%c)"},
		{"-a+b", "((-a)+b)"},
		{"-5", "-5"}, // folded literal
		{"a < b+1", "(a<(b+1))"},
		{"a+b == c*d", "((a+b)==(c*d))"},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", c.src, err)
			continue
		}
		if e.Key() != c.key {
			t.Errorf("ParseExpr(%q).Key() = %q, want %q", c.src, e.Key(), c.key)
		}
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, src := range []string{
		"", "a +", "(a", "a b", "a < b < c", "* a",
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", src)
		}
	}
}

func TestParseExprRoundTrip(t *testing.T) {
	// String() output must re-parse to the same term.
	for _, src := range []string{
		"a+b*c", "(a+b)*c", "a-(b-c)", "-x*3", "x%2==0",
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := ParseExpr(e.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", e.String(), src, err)
		}
		if !ir.ExprEqual(e, e2) {
			t.Errorf("round trip of %q changed term: %q vs %q", src, e.Key(), e2.Key())
		}
	}
}

func TestParseCFGBasic(t *testing.T) {
	g, err := ParseCFG(`
graph "demo"
node 1 {
  y := a+b
  out(y)
}
node 2 {}
edge s 1
edge 1 2
edge 2 e
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "demo" {
		t.Errorf("name = %q", g.Name)
	}
	n1, ok := g.NodeByLabel("1")
	if !ok || len(n1.Stmts) != 2 {
		t.Fatalf("node 1 wrong: %v", n1)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Errorf("shape wrong: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestParseCFGErrors(t *testing.T) {
	cases := []struct{ name, src, frag string }{
		{"undeclared edge", "node 1 {}\nedge s 2\nedge 1 e\nedge s 1", "undeclared"},
		{"duplicate node", "node 1 {}\nnode 1 {}\nedge s 1\nedge 1 e", "duplicate node"},
		{"duplicate edge", "node 1 {}\nedge s 1\nedge s 1\nedge 1 e", "duplicate edge"},
		{"stmts in start", "node s { skip }\nnode 1 {}\nedge s 1\nedge 1 e", "must be empty"},
		{"unterminated body", "node 1 { x := 1", "unterminated"},
		{"invalid structure", "node 1 {}\nedge s 1", "invalid graph"},
		{"garbage", "blah blah", "expected 'node' or 'edge'"},
	}
	for _, c := range cases {
		_, err := ParseCFG(c.src)
		if err == nil {
			t.Errorf("%s: parse succeeded", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.frag)
		}
	}
}

func TestParseCFGFormatRoundTrip(t *testing.T) {
	src := `graph "rt"
node 1 {
  y := a+b
  branch(y>0)
}
node 2 {
  out(y)
}
node 3 synthetic {
  skip
}
edge s 1
edge 1 2
edge 1 3
edge 2 e
edge 3 e
`
	g, err := ParseCFG(src)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseCFG(g.Format())
	if err != nil {
		t.Fatalf("re-parse of Format output: %v\n%s", err, g.Format())
	}
	if !cfg.Equal(g, g2) {
		t.Errorf("round trip changed graph:\n%s\nvs\n%s", g.Format(), g2.Format())
	}
	n3, _ := g2.NodeByLabel("3")
	if !n3.Synthetic {
		t.Error("synthetic flag lost in round trip")
	}
}

func TestParseCFGQuotedLabels(t *testing.T) {
	g, err := ParseCFG(`
node "S4,5" synthetic { x := a+b }
node 1 { out(x) }
edge s "S4,5"
edge "S4,5" 1
edge 1 e
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.NodeByLabel("S4,5"); !ok {
		t.Error("quoted label lost")
	}
	// Round trip must preserve the quoted label.
	g2, err := ParseCFG(g.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.Equal(g, g2) {
		t.Error("quoted-label round trip failed")
	}
}

func TestParseSourceStraightLine(t *testing.T) {
	g, err := ParseSource("p", `
x := a + b
out(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStmts() != 2 {
		t.Errorf("NumStmts = %d", g.NumStmts())
	}
	cfg.MustValidate(g)
}

func TestParseSourceIfShapes(t *testing.T) {
	// Concrete condition: branch statement, then/else order.
	g, err := ParseSource("p", `
if a > 0 {
  out(a)
} else {
  out(b)
}
out(c)
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MustValidate(g)
	var branchNode *cfg.Node
	for _, n := range g.Nodes() {
		if _, ok := n.Terminator(); ok {
			branchNode = n
		}
	}
	if branchNode == nil {
		t.Fatal("no branch node lowered")
	}
	if len(branchNode.Succs()) != 2 {
		t.Fatal("branch has wrong successor count")
	}
	// First successor holds the then-branch out(a).
	thenN := branchNode.Succs()[0]
	if len(thenN.Stmts) != 1 || thenN.Stmts[0].String() != "out(a)" {
		t.Errorf("then target wrong: %v", thenN.Stmts)
	}

	// Nondeterministic: no branch statement anywhere.
	g2, err := ParseSource("p2", "if * { out(a) } else { out(b) }")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range g2.Nodes() {
		if _, ok := n.Terminator(); ok {
			t.Error("nondet if produced a branch statement")
		}
	}
}

func TestParseSourceIfWithoutElse(t *testing.T) {
	g, err := ParseSource("p", `
if x > 1 { x := 0 }
out(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MustValidate(g)
}

func TestParseSourceWhileShape(t *testing.T) {
	g, err := ParseSource("p", `
while i > 0 { i := i - 1 }
out(i)
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MustValidate(g)
	// Find the loop header: a branch node with a back edge.
	var header *cfg.Node
	for _, n := range g.Nodes() {
		if _, ok := n.Terminator(); ok {
			header = n
		}
	}
	if header == nil {
		t.Fatal("no header")
	}
	body := header.Succs()[0]
	found := false
	for _, s := range body.Succs() {
		if s == header {
			found = true
		}
	}
	if !found {
		t.Error("loop body does not latch back to header")
	}
}

func TestParseSourceDoWhileShape(t *testing.T) {
	g, err := ParseSource("p", `
do { i := i - 1 } while i > 0
out(i)
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MustValidate(g)
	// The latch holds the branch; its first successor is the body.
	var latch *cfg.Node
	for _, n := range g.Nodes() {
		if _, ok := n.Terminator(); ok {
			latch = n
		}
	}
	if latch == nil {
		t.Fatal("no latch")
	}
	back := latch.Succs()[0]
	if len(back.Stmts) != 1 || back.Stmts[0].String() != "i := i-1" {
		t.Errorf("latch back target is not the body: %v", back.Stmts)
	}
	// The body must be reachable without passing the branch: a
	// do-while body executes at least once.
	if len(back.Preds()) != 2 {
		t.Errorf("body preds = %d, want 2 (entry + latch)", len(back.Preds()))
	}
}

func TestParseSourceNested(t *testing.T) {
	g, err := ParseSource("p", `
i := n
while * {
  if i > 10 {
    do { i := i - 2 } while *
  } else {
    i := i + 1
  }
}
out(i)
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MustValidate(g)
	if g.NumStmts() < 4 {
		t.Errorf("nested program lost statements: %d", g.NumStmts())
	}
}

func TestParseSourceErrors(t *testing.T) {
	for _, src := range []string{
		"if a > 0 { out(a) ",    // unterminated block
		"while { out(a) }",      // missing condition
		"do { x := 1 }",         // missing while
		"do { x := 1 } until *", // wrong keyword
		"branch(x)",             // branch not a source statement
		"x := ",                 // missing RHS
		"} ",                    // stray brace
	} {
		if _, err := ParseSource("p", src); err == nil {
			t.Errorf("ParseSource(%q) succeeded, want error", src)
		}
	}
}

func TestSourceCommentsAndSemicolons(t *testing.T) {
	g, err := ParseSource("p", `
# hash comment
x := 1; y := 2 // two on one line
out(x+y)
`)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStmts() != 3 {
		t.Errorf("NumStmts = %d, want 3", g.NumStmts())
	}
}

func TestLowerPreservesProgramOrder(t *testing.T) {
	g, err := ParseSource("p", `
a := 1
b := 2
out(a+b)
`)
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, n := range g.Nodes() {
		for _, s := range n.Stmts {
			all = append(all, s.String())
		}
	}
	want := []string{"a := 1", "b := 2", "out(a+b)"}
	if strings.Join(all, ";") != strings.Join(want, ";") {
		t.Errorf("statement order %v, want %v", all, want)
	}
}
