package pdce

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// Content addressing.
//
// The paper's transformation is deterministic: the delayability and
// dead/faint analyses are fixpoints over a lattice with a unique
// solution, and Theorem 3.7 guarantees the driver's result is unique
// regardless of iteration order. Optimize is therefore a pure function
// of (canonical program text, result-determining options), which makes
// results perfectly content-addressable: two requests with the same
// CacheKey are guaranteed the same optimized program, statement for
// statement. The serving layer (internal/server, cmd/pdced) builds its
// result cache on exactly this property.

// cacheKeyVersion is bumped whenever the canonical rendering or the
// option fingerprint changes meaning, so stale disk-spill entries from
// older builds can never be served.
const cacheKeyVersion = "pdce-cache-v1"

// CacheKeyVersion exposes the cache-key format version. Fleet-shared
// stores (internal/store) prefix their keys with it so replicas built
// against a different key format can never serve each other stale
// results — a mixed-version fleet degrades to a cold store, not to
// wrong answers.
func CacheKeyVersion() string { return cacheKeyVersion }

// Fingerprint digests the result-determining options into a short
// stable string. Two Options values with equal fingerprints and
// Cacheable() true produce identical results for the same program.
//
// Deliberately excluded: Context, RoundBudget, Verify, VerifyRuns, and
// ReproDir only decide whether a run is cut short or rolled back —
// a run that completes without error under them is identical to one
// without; errored (partial) results are never cached. Telemetry and
// Trace are included because they change the response payload
// (Stats.Telemetry), not the program.
func (o Options) Fingerprint() string {
	telemetry := o.Telemetry || o.Trace
	return fmt.Sprintf("mode=%s;max-rounds=%d;keep-synthetic=%v;no-incremental=%v;telemetry=%v;trace=%v",
		o.Mode, o.MaxRounds, o.KeepSynthetic, o.NoIncremental, telemetry, o.Trace)
}

// Cacheable reports whether results computed under o are
// content-addressable. A Hot predicate localizes the optimization to a
// caller-chosen region — the result depends on a function value that
// cannot be fingerprinted — and an Observe callback is a side channel
// the caller evidently wants invoked, so both disable caching.
func (o Options) Cacheable() bool {
	return o.Hot == nil && o.Observe == nil
}

// CacheKey returns the content address of (p, o): the hex SHA-256 of
// the program's canonical rendering plus the options fingerprint.
//
// The canonical rendering is Format(), which is independent of the
// source text the program was parsed from: whitespace, comments, and
// statement spelling variations that parse to the same flow graph all
// map to the same key, while any semantic difference — a changed
// operand, statement, edge, or block — changes it. The program name
// participates (it is part of the rendered result), so identical
// bodies under different names address distinct entries.
func (p *Program) CacheKey(o Options) string {
	h := sha256.New()
	io.WriteString(h, cacheKeyVersion)
	io.WriteString(h, "\n")
	io.WriteString(h, o.Fingerprint())
	io.WriteString(h, "\n")
	io.WriteString(h, p.g.Format())
	return hex.EncodeToString(h.Sum(nil))
}
