package pdce

import "strings"

// DetectLang guesses which front end parses src: "cfg" when the first
// significant line opens with one of the low-level format's keywords
// (graph, node, edge), "while" otherwise. It is the auto-detection rule
// of cmd/pdce and the pdced server's lang=auto path; Pool uses it
// client-side so the affinity key is computed over the same parse the
// server will perform.
func DetectLang(src string) string {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		for _, kw := range []string{"graph", "node", "edge"} {
			if strings.HasPrefix(line, kw+" ") || strings.HasPrefix(line, kw+"\t") {
				return "cfg"
			}
		}
		return "while"
	}
	return "while"
}
