// Faint versus dead code — the paper's Figure 9 and Figure 12
// phenomena on one program, comparing four eliminators.
//
//	go run ./examples/faint
//
// A "faint" assignment is one whose value is only ever consumed by
// other useless assignments — e.g. a counter that feeds nothing but
// itself (tick := tick + 1 in a loop), or a pair x := ...; y := x+1
// where y is itself never needed. Dead-variable analysis cannot remove
// such code (the variables *are* used); the faint analysis and
// SSA-based mark-and-sweep can.
package main

import (
	"fmt"
	"log"

	"pdce"
)

const source = `
// instrumentation counter left over after a debug flag was removed:
// tick is only used to compute itself and "stat", which nobody reads.
tick := 0
acc := 0
i := n
do {
    tick := tick + 1
    stat := tick * 2
    acc := acc + i
    i := i - 1
} while i > 0
out(acc)
`

func main() {
	prog, err := pdce.ParseSource("faint", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== input ==")
	fmt.Print(prog)
	fmt.Println()

	show := func(name string, opt *pdce.Program, removedHint int) {
		if err := prog.Check(opt, 100); err != nil {
			log.Fatalf("%s broke the program: %v", name, err)
		}
		fmt.Printf("%-28s -> %2d statements left, %2d assignments removed, savings %.0f%%\n",
			name, opt.NumStatements(), removedHint, 100*prog.Savings(opt, 100))
	}

	dce, n1 := prog.DeadCodeElimination()
	show("classic dce (dead vars)", dce, n1)

	fce, n2 := prog.FaintCodeElimination()
	show("fce (faint vars, Table 1)", fce, n2)

	ssadce, n3 := prog.SSADeadCodeElimination()
	show("ssa mark-and-sweep [5]", ssadce, n3)

	dudce, n4 := prog.DefUseDCE()
	show("def-use marking [2,21,30]", dudce, n4)

	pfe, stats, err := prog.PFE()
	if err != nil {
		log.Fatal(err)
	}
	show("pfe (sinking + fce)", pfe, stats.Eliminated)

	fmt.Println("\n== after pfe ==")
	fmt.Print(pfe)
	fmt.Println()
	fmt.Println("dce keeps the faint tick/stat pair (their variables are 'used');")
	fmt.Println("fce, ssa-dce and def-use marking all remove it — exactly the")
	fmt.Println("dead-vs-faint gap of the paper's Figure 9.")
}
