// Loop-invariant sinking with second-order effects — the paper's
// Figure 3/4 scenario as a realistic workload.
//
//	go run ./examples/loopinvariant
//
// A hot loop carries a dependent pair of loop-invariant assignments:
// the first defines an operand of the second, so classic
// loop-invariant code motion cannot hoist the pair (and classic dead
// code elimination sees nothing dead at all). Partial dead code
// elimination removes both from the loop in successive rounds: sinking
// the second suspends the blockade of the first — the second-order
// effect Section 4 of the paper is about.
package main

import (
	"fmt"
	"log"

	"pdce"
)

const source = `
// checksum-style kernel: the scale/bias pair is loop invariant, but
// bias depends on scale, and the loop only publishes the accumulator.
sum := 0
i := n
do {
    scale := base * 4        // invariant, defines an operand of bias
    bias := scale + off      // invariant, blocked by its use of scale
    sum := sum + i
    i := i - 1
} while i > 0
if * {
    out(sum + bias)          // bias needed only on this exit path
} else {
    out(sum)
}
`

func main() {
	prog, err := pdce.ParseSource("loopinvariant", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== input ==")
	fmt.Print(prog)

	dce, removed := prog.DeadCodeElimination()
	fmt.Printf("\nclassic dce: removed %d (cannot touch the loop-invariant pair)\n", removed)

	opt, stats, err := prog.PDE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== after pde ==")
	fmt.Print(opt)
	fmt.Printf("\nfixpoint after %d rounds; %d assignments eliminated, %d instances re-inserted\n",
		stats.Rounds, stats.Eliminated, stats.Inserted)

	if err := prog.Check(opt, 200); err != nil {
		log.Fatal("verification failed: ", err)
	}

	// Quantify the win on executions with a concrete iteration count.
	input := map[string]int64{"n": 1000, "base": 7, "off": 3}
	before := prog.RunWithInput(1, 8192, input)
	after := opt.RunWithInput(1, 8192, input)
	fmt.Printf("\nn=1000 execution: %d assignment instances before, %d after (%.1fx reduction)\n",
		before.AssignExecs, after.AssignExecs,
		float64(before.AssignExecs)/float64(after.AssignExecs))
	fmt.Printf("dce-only would have executed %d\n", mustRun(dce, input))
}

func mustRun(p *pdce.Program, input map[string]int64) int {
	t := p.RunWithInput(1, 8192, input)
	if !t.Terminated {
		log.Fatal("execution did not terminate")
	}
	return t.AssignExecs
}
