// Random-program harness: generate seeded random workloads, optimize
// them, and machine-check the paper's guarantees on every one —
// a miniature of the repository's property-test suite, runnable
// standalone and useful for poking at the optimizer's behaviour:
//
//	go run ./examples/randomharness            # 50 programs
//	go run ./examples/randomharness -n 500     # more
//	go run ./examples/randomharness -irr       # irreducible graphs
package main

import (
	"flag"
	"fmt"
	"log"

	"pdce"
)

var (
	count = flag.Int("n", 50, "number of random programs")
	stmts = flag.Int("stmts", 60, "statements per program")
	irr   = flag.Bool("irr", false, "generate irreducible control flow")
)

func main() {
	flag.Parse()

	var totalSavedPDE, totalSavedPFE float64
	worstSeed, bestSeed := int64(-1), int64(-1)
	worst, best := 2.0, -1.0

	for seed := int64(0); seed < int64(*count); seed++ {
		prog := pdce.Generate(pdce.GenParams{
			Seed:        seed,
			Stmts:       *stmts,
			Irreducible: *irr,
		})

		optPDE, _, err := prog.PDE()
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}
		optPFE, _, err := prog.PFE()
		if err != nil {
			log.Fatalf("seed %d: %v", seed, err)
		}

		// The guarantees, checked on every program: identical
		// outputs on replayed executions, never more work.
		if err := prog.Check(optPDE, 40); err != nil {
			log.Fatalf("seed %d: pde violated the paper's guarantee: %v", seed, err)
		}
		if err := prog.Check(optPFE, 40); err != nil {
			log.Fatalf("seed %d: pfe violated the paper's guarantee: %v", seed, err)
		}

		s := prog.Savings(optPDE, 40)
		totalSavedPDE += s
		totalSavedPFE += prog.Savings(optPFE, 40)
		if s < worst {
			worst, worstSeed = s, seed
		}
		if s > best {
			best, bestSeed = s, seed
		}
	}

	kind := "structured"
	if *irr {
		kind = "irreducible"
	}
	fmt.Printf("%d %s programs of ~%d statements: all verified.\n", *count, kind, *stmts)
	fmt.Printf("mean dynamic assignment savings: pde %.1f%%, pfe %.1f%%\n",
		100*totalSavedPDE/float64(*count), 100*totalSavedPFE/float64(*count))
	fmt.Printf("best case: seed %d saved %.1f%%; worst case: seed %d saved %.1f%%\n",
		bestSeed, 100*best, worstSeed, 100*worst)
	fmt.Println("\nre-run any seed in isolation, e.g.:")
	fmt.Printf("  prog := pdce.Generate(pdce.GenParams{Seed: %d, Stmts: %d, Irreducible: %v})\n",
		bestSeed, *stmts, *irr)
}
