// Hot-region optimization — the paper's Section 7 proposal for taming
// the exhaustive iteration: "localizing the optimization process to
// 'hot areas'" and bounding the number of rounds.
//
//	go run ./examples/hotregion
//
// A program with an expensive inner loop (hot) surrounded by cold
// bookkeeping is optimized three ways: full pde, pde restricted to the
// hot loop, and pde truncated to a single round. The hot-region run
// achieves the performance win that matters (the loop is emptied)
// while provably leaving every cold block untouched.
package main

import (
	"fmt"
	"log"

	"pdce"
)

const source = `
// cold prologue: configuration that a smarter compiler would clean
// up, but which profiling says never matters.
cfg := mode * 2
trace := cfg + 1
limit := n

// hot inner loop: the invariant pair the paper's Figure 3 is about.
i := limit
acc := 0
do {
    scale := base * 4
    bias := scale + off
    acc := acc + i
    i := i - 1
} while i > 0

// cold epilogue.
if * {
    out(acc + bias)
} else {
    out(acc)
}
out(trace)
`

func main() {
	prog, err := pdce.ParseSource("hotregion", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== input ==")
	fmt.Print(prog)

	// Profile the program: run it on a representative input and
	// call every block hot that accounts for more than 10% of block
	// visits. This is exactly the input Section 7's heuristic
	// presumes a profiler would supply.
	profileRun := prog.RunWithInput(1, 8192, map[string]int64{
		"n": 1000, "base": 7, "off": 3, "mode": 1,
	})
	hotLabels := map[string]bool{}
	for label, visits := range profileRun.VisitsPerBlock {
		if visits*10 > profileRun.AssignExecs { // crude 10% heuristic
			hotLabels[label] = true
		}
	}
	fmt.Printf("\nhot blocks (measured profile, >10%% of visits): %v\n", keys(hotLabels))

	run := func(name string, o pdce.Options) *pdce.Program {
		opt, stats, err := prog.Optimize(o)
		if err != nil {
			log.Fatal(err)
		}
		if err := prog.Check(opt, 80); err != nil {
			log.Fatalf("%s broke the program: %v", name, err)
		}
		in := map[string]int64{"n": 1000, "base": 7, "off": 3, "mode": 1}
		tr := opt.RunWithInput(1, 8192, in)
		fmt.Printf("%-22s rounds=%d  eliminated=%d  dynamic assigns (n=1000): %d\n",
			name, stats.Rounds, stats.Eliminated, tr.AssignExecs)
		return opt
	}

	fmt.Println()
	base := prog.RunWithInput(1, 8192, map[string]int64{"n": 1000, "base": 7, "off": 3, "mode": 1})
	fmt.Printf("%-22s dynamic assigns (n=1000): %d\n", "unoptimized", base.AssignExecs)

	run("full pde", pdce.Options{Mode: pdce.Dead})
	hotOpt := run("hot-region pde", pdce.Options{
		Mode: pdce.Dead,
		Hot:  func(label string) bool { return hotLabels[label] },
	})
	run("pde, 1 round", pdce.Options{Mode: pdce.Dead, MaxRounds: 1})

	fmt.Println("\n== hot-region result ==")
	fmt.Print(hotOpt)
	fmt.Println()
	fmt.Println("the hot loop is empty; the cold prologue's useless cfg/trace")
	fmt.Println("chain survives untouched — exactly the compile-time/benefit")
	fmt.Println("trade Section 7 proposes.")
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	// insertion sort for stable output
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
