// Pipeline: lazy code motion (partial redundancy elimination) followed
// by partial dead code elimination — the two dual transformations of
// the Knoop/Rüthing/Steffen line of work composed into a small
// optimizer.
//
//	go run ./examples/pipeline
//
// LCM hoists the loop-invariant computation a*b out of the loop into a
// temporary evaluated once; PDE then sinks and prunes the partially
// dead assignment the programmer left on the cold path. Neither pass
// can do the other's job: the example quantifies LCM's win in dynamic
// term evaluations and PDE's win in dynamic assignment executions.
package main

import (
	"fmt"
	"log"

	"pdce"
)

const source = `
// warm path recomputes the invariant step a*b every iteration
// (partially redundant); the cold path's diagnostic is partially dead.
i := n
r := 0
do {
    step := a * b            // loop invariant -> lcm hoists it
    diag := r * 3            // partially dead: only the cold exit needs it
    r := r + step
    i := i - 1
} while i > 0
if * {
    out(diag)                // cold exit
} else {
    out(r)                   // hot exit
}
`

func main() {
	prog, err := pdce.ParseSource("pipeline", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== input ==")
	fmt.Print(prog)

	// Stage 1: partial redundancy elimination.
	afterLCM, inserted, replaced, err := prog.LazyCodeMotion()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== after lcm (inserted %d temp defs, retargeted %d computations) ==\n", inserted, replaced)
	fmt.Print(afterLCM)

	// Stage 2: partial dead code elimination.
	final, stats, err := afterLCM.PDE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== after lcm + pde (%d rounds, %d eliminated) ==\n", stats.Rounds, stats.Eliminated)
	fmt.Print(final)

	// Each stage must preserve behaviour. LCM renames computations
	// into temporaries, so it is checked on outputs; pde is
	// additionally held to the never-more-work guarantee.
	if err := prog.CheckOutputs(afterLCM, 150); err != nil {
		log.Fatal("lcm broke the program: ", err)
	}
	if err := afterLCM.Check(final, 150); err != nil {
		log.Fatal("pde broke the program: ", err)
	}

	input := map[string]int64{"n": 500, "a": 2, "b": 5}
	t0 := prog.RunWithInput(7, 8192, input)
	t1 := afterLCM.RunWithInput(7, 8192, input)
	t2 := final.RunWithInput(7, 8192, input)
	fmt.Printf("\nn=500 dynamic term evaluations:     %5d (input) -> %5d (lcm) -> %5d (lcm+pde)\n",
		t0.TermEvals, t1.TermEvals, t2.TermEvals)
	fmt.Printf("n=500 dynamic assignment instances: %5d (input) -> %5d (lcm) -> %5d (lcm+pde)\n",
		t0.AssignExecs, t1.AssignExecs, t2.AssignExecs)
	fmt.Println("\nlcm attacks redundancy (recomputation on the same path);")
	fmt.Println("pde attacks partial deadness (computation for paths not taken) —")
	fmt.Println("the duality the paper builds on.")
}
