// Quickstart: parse a small structured program, run partial dead code
// elimination, and verify the result behaves identically.
//
//	go run ./examples/quickstart
//
// The program is the paper's motivating example (Figure 1): y := a+b
// is dead when the branch redefines y, alive when it doesn't. Plain
// dead code elimination cannot touch it; pde sinks it to the branch
// that needs it.
package main

import (
	"fmt"
	"log"

	"pdce"
)

const source = `
y := a + b          // partially dead: only one branch uses this value
if * {
    y := c          // redefines y; the computation above was wasted
}
out(x + y)
`

func main() {
	prog, err := pdce.ParseSource("quickstart", source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== input program ==")
	fmt.Print(prog)

	// Classic dead code elimination finds nothing to do: y := a+b is
	// live on the fall-through path.
	dceOnly, removed := prog.DeadCodeElimination()
	fmt.Printf("\nclassic dce removed %d assignments (the partially dead one is out of reach)\n", removed)
	_ = dceOnly

	// Partial dead code elimination sinks it to where it is needed.
	opt, stats, err := prog.PDE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== after pde ==")
	fmt.Print(opt)
	fmt.Printf("\nrounds=%d  eliminated=%d  inserted=%d\n",
		stats.Rounds, stats.Eliminated, stats.Inserted)

	// Replay executions: same outputs, never more work.
	if err := prog.Check(opt, 100); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Printf("verified over 100 executions; dynamic assignment savings: %.0f%%\n",
		100*prog.Savings(opt, 100))
}
