package pdce_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"pdce"
	"pdce/internal/server"
)

// The paper's motivating example (Figure 1): y := a+b is wasted
// whenever the branch overwrites y. PDE sinks it to the branch that
// needs it.
func ExampleProgram_PDE() {
	prog, err := pdce.ParseSource("demo", `
y := a + b
if * {
    y := c
}
out(x + y)
`)
	if err != nil {
		log.Fatal(err)
	}
	opt, stats, err := prog.PDE()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eliminated: %d\n", stats.Eliminated)
	fmt.Print(opt)
	// Output:
	// eliminated: 1
	// s        [] -> b1
	// e        [] ->
	// b1       [] -> b2 b3
	// b2       [y := c] -> b4
	// b3       [y := a+b] -> b4
	// b4       [out(x+y)] -> e
}

// Faint code — a self-sustaining counter nothing reads — is beyond
// dead-variable analysis but not beyond PFE.
func ExampleProgram_PFE() {
	prog, err := pdce.ParseSource("faint", `
tick := 0
i := 2
do {
    tick := tick + 1
    i := i - 1
} while i > 0
out(i)
`)
	if err != nil {
		log.Fatal(err)
	}
	pdeOut, _, _ := prog.PDE()
	pfeOut, _, _ := prog.PFE()
	fmt.Printf("assignments: input=%d pde=%d pfe=%d\n",
		prog.NumAssignments(), pdeOut.NumAssignments(), pfeOut.NumAssignments())
	// Output:
	// assignments: input=4 pde=4 pfe=2
}

// Check replays executions of the transformed program against the
// original: identical outputs and never more work.
func ExampleProgram_Check() {
	prog, _ := pdce.ParseSource("p", `
x := a * b
if * { x := 0 }
out(x)
`)
	opt, _, _ := prog.PDE()
	if err := prog.Check(opt, 100); err != nil {
		fmt.Println("violation:", err)
		return
	}
	fmt.Println("verified")
	// Output:
	// verified
}

// Passes composes the repository's transformations into a small
// optimizer pipeline.
func ExampleProgram_Passes() {
	prog, _ := pdce.ParseSource("p", `
i := 3
r := 0
do {
    step := a * b
    r := r + step
    i := i - 1
} while i > 0
out(r)
`)
	opt, err := prog.Passes("lcm", "copyprop", "pde")
	if err != nil {
		log.Fatal(err)
	}
	before := prog.RunWithInput(1, 0, map[string]int64{"a": 2, "b": 3})
	after := opt.RunWithInput(1, 0, map[string]int64{"a": 2, "b": 3})
	fmt.Printf("outputs equal: %v\n", before.Outputs[0] == after.Outputs[0])
	fmt.Printf("term evaluations: %d -> %d\n", before.TermEvals, after.TermEvals)
	// Output:
	// outputs equal: true
	// term evaluations: 9 -> 7
}

// Client speaks the pdced wire protocol. Results are
// content-addressed: resubmitting an identical program is a cache
// hit, reported out of band in the X-Pdced-Cache header (the
// CacheState return).
func ExampleClient_Optimize() {
	s, err := server.New(server.Config{})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	client := pdce.NewClient(ts.URL)
	source := "y := a + b\nif * {\n    y := c\n}\nout(x + y)\n"
	resp, cache, err := client.Optimize(context.Background(), "demo", source, pdce.RequestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("eliminated: %d, cache: %s\n", resp.Stats.Eliminated, cache)
	_, cache, err = client.Optimize(context.Background(), "demo", source, pdce.RequestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("again: %s\n", cache)
	// Output:
	// eliminated: 1, cache: miss
	// again: hit
}

// Pool serves a replicated pdced fleet. The optimizer's determinism
// makes every replica interchangeable, so the pool routes each
// program to a consistent home replica purely to reuse its cache —
// repeating a request is a hit on the same member.
func ExamplePool() {
	var urls []string
	for i := 0; i < 3; i++ {
		s, err := server.New(server.Config{})
		if err != nil {
			log.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}

	pool, err := pdce.NewPool(urls, pdce.PoolOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	source := "y := a + b\nif * {\n    y := c\n}\nout(x + y)\n"
	_, first, err := pool.Optimize(context.Background(), "demo", source, pdce.RequestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	_, again, err := pool.Optimize(context.Background(), "demo", source, pdce.RequestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicas: %d\n", len(pool.Members()))
	fmt.Printf("first: %s, again: %s\n", first, again)
	fmt.Printf("affinity hit rate: %.1f\n", pool.Stats().Snapshot().AffinityHitRate)
	// Output:
	// replicas: 3
	// first: miss, again: hit
	// affinity hit rate: 1.0
}

// The low-level CFG language expresses arbitrary branching structure,
// including the irreducible loops of the paper's Figure 5.
func ExampleParseCFG() {
	prog, err := pdce.ParseCFG(`
graph "fig9"
node 1 {}
node 2 {}
node 3 { x := x+1 }
node 4 {}
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 2
edge 4 e
`)
	if err != nil {
		log.Fatal(err)
	}
	// Figure 9: x := x+1 is faint but not dead.
	_, dce := prog.DeadCodeElimination()
	_, fce := prog.FaintCodeElimination()
	fmt.Printf("dce removes %d, fce removes %d\n", dce, fce)
	// Output:
	// dce removes 0, fce removes 1
}
