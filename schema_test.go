package pdce_test

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pdce"
	"pdce/internal/obs"
)

// reportSchema is the golden schema for -metrics-json payloads,
// shared with the CI telemetry smoke.
const reportSchema = "testdata/report.schema.json"

// checkSchema validates a JSON document against a golden schema file.
//
// The schema dialect is deliberately tiny (this repo takes no external
// dependencies): an object with a "required" and an "optional" map from
// key to either a type name ("string", "number", "bool") or a nested
// schema; a schema holding "elements" applies that spec (a schema or a
// type name) to every element of an array; a schema holding "values"
// applies its spec to every value of a free-form object (a homogeneous
// map like bench metrics). Required keys must be present with the right
// type; optional keys are type-checked when present; unknown keys are
// rejected, so the golden file must be updated in the same change that
// extends the payload — that is the point.
func checkSchema(t *testing.T, label string, data []byte, schemaPath string) {
	t.Helper()
	raw, err := os.ReadFile(schemaPath)
	if err != nil {
		t.Fatalf("%s: schema: %v", label, err)
	}
	var schema map[string]any
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatalf("%s: schema: %v", label, err)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("%s: payload: %v", label, err)
	}
	if err := validate(doc, schema, "$"); err != nil {
		t.Errorf("%s: %v\npayload: %s", label, err, data)
	}
}

func validate(doc any, schema map[string]any, path string) error {
	if elems, ok := schema["elements"]; ok {
		arr, ok := doc.([]any)
		if !ok {
			return fmt.Errorf("%s: want array, got %T", path, doc)
		}
		for i, el := range arr {
			if err := validateValue(el, elems, fmt.Sprintf("%s[%d]", path, i)); err != nil {
				return err
			}
		}
		return nil
	}
	if vals, ok := schema["values"]; ok {
		obj, ok := doc.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: want object, got %T", path, doc)
		}
		for key, v := range obj {
			if err := validateValue(v, vals, path+"."+key); err != nil {
				return err
			}
		}
		return nil
	}

	obj, ok := doc.(map[string]any)
	if !ok {
		return fmt.Errorf("%s: want object, got %T", path, doc)
	}
	required, _ := schema["required"].(map[string]any)
	optional, _ := schema["optional"].(map[string]any)
	for key, spec := range required {
		v, present := obj[key]
		if !present {
			return fmt.Errorf("%s: missing required key %q", path, key)
		}
		if err := validateValue(v, spec, path+"."+key); err != nil {
			return err
		}
	}
	for key, v := range obj {
		if _, ok := required[key]; ok {
			continue
		}
		spec, ok := optional[key]
		if !ok {
			return fmt.Errorf("%s: unexpected key %q (update the golden schema)", path, key)
		}
		if err := validateValue(v, spec, path+"."+key); err != nil {
			return err
		}
	}
	return nil
}

func validateValue(v, spec any, path string) error {
	switch s := spec.(type) {
	case string:
		switch s {
		case "string":
			if _, ok := v.(string); !ok {
				return fmt.Errorf("%s: want string, got %T", path, v)
			}
		case "number":
			if _, ok := v.(float64); !ok {
				return fmt.Errorf("%s: want number, got %T", path, v)
			}
		case "bool":
			if _, ok := v.(bool); !ok {
				return fmt.Errorf("%s: want bool, got %T", path, v)
			}
		case "object":
			if _, ok := v.(map[string]any); !ok {
				return fmt.Errorf("%s: want object, got %T", path, v)
			}
		default:
			return fmt.Errorf("%s: bad schema: unknown type %q", path, s)
		}
		return nil
	case map[string]any:
		return validate(v, s, path)
	default:
		return fmt.Errorf("%s: bad schema: %T", path, spec)
	}
}

// TestQueueStatsSchema pins the golden schema's queue_stats block to
// the real obs.QueueSnapshot wire shape: every snapshot field must be
// declared (unknown keys are rejected) and every declared field must
// be emitted (all are required) — the block and the type can only
// drift together, in the same change.
func TestQueueStatsSchema(t *testing.T) {
	raw, err := os.ReadFile(reportSchema)
	if err != nil {
		t.Fatal(err)
	}
	var schema map[string]any
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatal(err)
	}
	spec, ok := schema["optional"].(map[string]any)["queue_stats"].(map[string]any)
	if !ok {
		t.Fatal("golden schema has no queue_stats block")
	}

	var stats obs.QueueStats
	stats.AddSubmit()
	stats.AddCompletion()
	snap := stats.Snapshot(obs.QueueGauges{Depth: 1, WALRecords: 2, WALBytes: 64})
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if err := validate(doc, spec, "$.queue_stats"); err != nil {
		t.Errorf("QueueSnapshot does not match the golden queue_stats block: %v\npayload: %s", err, data)
	}
}

// TestStoreStatsSchema pins the golden schema's store_stats block to
// the real obs.StoreSnapshot wire shape — the "store" section of
// pdced's /metrics — the same way TestQueueStatsSchema pins the queue:
// every snapshot field must be declared, every declared field must be
// emitted, so the block and the type can only drift together.
func TestStoreStatsSchema(t *testing.T) {
	raw, err := os.ReadFile(reportSchema)
	if err != nil {
		t.Fatal(err)
	}
	var schema map[string]any
	if err := json.Unmarshal(raw, &schema); err != nil {
		t.Fatal(err)
	}
	spec, ok := schema["optional"].(map[string]any)["store_stats"].(map[string]any)
	if !ok {
		t.Fatal("golden schema has no store_stats block")
	}

	var stats obs.StoreStats
	stats.AddL2Hit()
	stats.AddL2Miss()
	stats.AddLeaseWin()
	stats.RecordGetLatency(time.Millisecond)
	snap := stats.Snapshot(obs.StoreGauges{Blobs: 3, Bytes: 4096})
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if err := validate(doc, spec, "$.store_stats"); err != nil {
		t.Errorf("StoreSnapshot does not match the golden store_stats block: %v\npayload: %s", err, data)
	}
}

// TestTelemetrySmoke is the CI telemetry smoke (make smoke-telemetry):
// every corpus program is optimized in both modes with all collectors
// on, and each resulting report must validate against the golden
// schema.
func TestTelemetrySmoke(t *testing.T) {
	files, err := filepath.Glob("testdata/corpus/*.while")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus programs: %v", err)
	}
	for _, f := range files {
		for _, mode := range []pdce.Mode{pdce.Dead, pdce.Faint} {
			t.Run(fmt.Sprintf("%s-%s", filepath.Base(f), mode), func(t *testing.T) {
				p := mustParseFile(t, f)
				_, st, err := p.Optimize(pdce.Options{Mode: mode, Trace: true})
				if err != nil {
					t.Fatal(err)
				}
				if st.Telemetry == nil {
					t.Fatal("no telemetry")
				}
				rep := pdce.MakeReport(p.Name(), mode, st, 0, nil)
				data, err := json.Marshal(rep)
				if err != nil {
					t.Fatal(err)
				}
				checkSchema(t, f, data, reportSchema)
			})
		}
	}
}
