package pdce_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"pdce"
)

// failFirstOptimize is a transport that fails the first POST /optimize
// with a connection-level error, forcing exactly one pool retry; all
// later requests (including the trace export) pass through.
type failFirstOptimize struct {
	base   http.RoundTripper
	mu     sync.Mutex
	failed bool
}

func (f *failFirstOptimize) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodPost && req.URL.Path == "/optimize" {
		f.mu.Lock()
		first := !f.failed
		f.failed = true
		f.mu.Unlock()
		if first {
			return nil, fmt.Errorf("induced transport failure")
		}
	}
	return f.base.RoundTrip(req)
}

// TestPoolTraceEndToEnd is the issue's acceptance path: one request
// through a three-replica pool with one induced retry must yield ONE
// trace tree — client root, a failed and a successful attempt, and the
// winning replica's full server-side subtree — retrievable from that
// replica's /debug/traces/{id} and valid against the pinned span
// schema.
func TestPoolTraceEndToEnd(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		_, ts := newTestReplica(t)
		urls = append(urls, ts.URL)
	}

	store := pdce.NewTraceStore(64, 1.0, 42)
	p, err := pdce.NewPool(urls, pdce.PoolOptions{
		HTTPClient:    &http.Client{Transport: &failFirstOptimize{base: http.DefaultTransport}},
		Traces:        store,
		ProbeInterval: -1,
		Seed:          7,
		Retry:         pdce.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, _, err := p.Optimize(context.Background(), "trace-e2e", poolTestSource, pdce.RequestOptions{}); err != nil {
		t.Fatalf("optimize through pool: %v", err)
	}

	// The pool's own store holds the client half of the trace.
	list := store.Summaries(0)
	if len(list.Traces) != 1 {
		t.Fatalf("pool store holds %d traces, want 1: %+v", len(list.Traces), list.Traces)
	}
	traceID := list.Traces[0].TraceID
	clientDump, ok := store.Get(traceID)
	if !ok {
		t.Fatalf("trace %s not retained client-side", traceID)
	}
	var attempts, failedAttempts int
	for _, sp := range clientDump.Spans {
		if sp.Name == "client.attempt" {
			attempts++
			if sp.Error != "" {
				failedAttempts++
			}
		}
	}
	if attempts != 2 || failedAttempts != 1 {
		t.Fatalf("want 2 attempts with 1 failure, got %d/%d: %+v", attempts, failedAttempts, clientDump.Spans)
	}

	// Exactly one replica — the winner — holds the merged trace.
	var body []byte
	var found int
	for _, u := range urls {
		resp, err := http.Get(u + "/debug/traces/" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			found++
			body = b
		}
	}
	if found != 1 {
		t.Fatalf("trace %s retained on %d replicas, want exactly the winner", traceID, found)
	}
	checkSchema(t, "trace dump", body, "testdata/trace.schema.json")

	var dump pdce.TraceDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	if dump.TraceID != traceID {
		t.Fatalf("dump trace id %s, want %s", dump.TraceID, traceID)
	}
	if len(dump.Spans) < 8 {
		t.Fatalf("merged trace has %d spans, want >= 8: %+v", len(dump.Spans), dump.Spans)
	}
	byName := map[string][]pdce.SpanRecord{}
	for _, sp := range dump.Spans {
		if sp.TraceID != traceID {
			t.Fatalf("span %s carries trace %s, want %s", sp.SpanID, sp.TraceID, traceID)
		}
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, name := range []string{
		"client.request", "client.attempt",
		"server.optimize", "server.admission", "server.cache",
		"solve", "solve.round",
	} {
		if len(byName[name]) == 0 {
			t.Errorf("merged trace missing span %q (have %v)", name, spanNameSet(dump.Spans))
		}
	}

	// Tree coherence across the process boundary: the server root's
	// parent is the winning attempt's span, which hangs off the client
	// root.
	var winner pdce.SpanRecord
	for _, sp := range byName["client.attempt"] {
		if sp.Error == "" {
			winner = sp
		}
	}
	if len(byName["server.optimize"]) != 1 || byName["server.optimize"][0].ParentID != winner.SpanID {
		t.Errorf("server root not parented by the winning attempt: %+v vs attempt %s",
			byName["server.optimize"], winner.SpanID)
	}
	if len(byName["client.request"]) != 1 || winner.ParentID != byName["client.request"][0].SpanID {
		t.Errorf("winning attempt not parented by the client root")
	}
}

func spanNameSet(spans []pdce.SpanRecord) []string {
	seen := map[string]bool{}
	var names []string
	for _, sp := range spans {
		if !seen[sp.Name] {
			seen[sp.Name] = true
			names = append(names, sp.Name)
		}
	}
	return names
}
