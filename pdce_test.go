package pdce_test

import (
	"strings"
	"testing"

	"pdce"
)

const motivating = `
y := a + b
if * {
    y := c
}
out(x + y)
`

func TestQuickstartFlow(t *testing.T) {
	prog, err := pdce.ParseSource("demo", motivating)
	if err != nil {
		t.Fatal(err)
	}
	opt, stats, err := prog.PDE()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Eliminated == 0 && stats.SinkRemoved == 0 {
		t.Error("pde did nothing on the motivating example")
	}
	if err := prog.Check(opt, 64); err != nil {
		t.Fatal(err)
	}
	if s := prog.Savings(opt, 64); s <= 0 {
		t.Errorf("savings = %f, want positive", s)
	}
	// The input program is untouched (3 statements: the two
	// assignments and the out; the nondeterministic if has no
	// branch statement).
	if prog.NumStatements() != 3 {
		t.Errorf("input mutated: %d statements", prog.NumStatements())
	}
}

func TestParseCFGAndFormatRoundTrip(t *testing.T) {
	p, err := pdce.ParseCFG(`
graph "rt"
node 1 { x := a+b; out(x) }
edge s 1
edge 1 e
`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := pdce.ParseCFG(p.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(q) {
		t.Error("Format/ParseCFG round trip failed")
	}
}

func TestParseErrorsSurface(t *testing.T) {
	if _, err := pdce.ParseSource("p", "x := "); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := pdce.ParseCFG("node 1 {"); err == nil {
		t.Error("bad cfg accepted")
	}
}

func TestOptimizeModes(t *testing.T) {
	prog, err := pdce.ParseSource("faint", `
tick := 0
i := 3
do {
    tick := tick + 1
    i := i - 1
} while i > 0
out(i)
`)
	if err != nil {
		t.Fatal(err)
	}
	deadOpt, _, err := prog.Optimize(pdce.Options{Mode: pdce.Dead})
	if err != nil {
		t.Fatal(err)
	}
	faintOpt, _, err := prog.Optimize(pdce.Options{Mode: pdce.Faint})
	if err != nil {
		t.Fatal(err)
	}
	// tick is faint (feeds only itself): pfe removes it, pde keeps it.
	if faintOpt.NumAssignments() >= deadOpt.NumAssignments() {
		t.Errorf("pfe left %d assignments, pde %d — expected pfe strictly smaller",
			faintOpt.NumAssignments(), deadOpt.NumAssignments())
	}
}

func TestMaxRoundsOption(t *testing.T) {
	prog := pdce.Generate(pdce.GenParams{Seed: 11, Stmts: 80})
	opt, stats, err := prog.Optimize(pdce.Options{Mode: pdce.Dead, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds > 1 {
		t.Errorf("rounds = %d with MaxRounds 1", stats.Rounds)
	}
	if err := prog.Check(opt, 32); err != nil {
		t.Fatal("truncated run broke semantics: ", err)
	}
}

func TestKeepSyntheticOption(t *testing.T) {
	// A critical edge with nothing to optimize: the synthetic node
	// stays empty, so by default it vanishes again while
	// KeepSynthetic retains it.
	src := `
node 0 {}
node 1 {}
node j { out(1) }
node 4 {}
edge s 0
edge 0 1
edge 0 j
edge 1 j
edge 1 4
edge j 4
edge 4 e
`
	prog, err := pdce.ParseCFG(src)
	if err != nil {
		t.Fatal(err)
	}
	def, _, err := prog.PDE()
	if err != nil {
		t.Fatal(err)
	}
	kept, _, err := prog.Optimize(pdce.Options{Mode: pdce.Dead, KeepSynthetic: true})
	if err != nil {
		t.Fatal(err)
	}
	if kept.NumBlocks() <= def.NumBlocks() {
		t.Errorf("KeepSynthetic blocks %d, default %d", kept.NumBlocks(), def.NumBlocks())
	}
}

func TestBaselineAccessors(t *testing.T) {
	prog, err := pdce.ParseSource("p", `
a := 1
b := a + 1
c := b + 1
out(5)
`)
	if err != nil {
		t.Fatal(err)
	}
	_, nDCE := prog.DeadCodeElimination()
	_, nFCE := prog.FaintCodeElimination()
	_, nSSA := prog.SSADeadCodeElimination()
	_, nDU := prog.DefUseDCE()
	if nDCE != 3 || nFCE != 3 || nSSA != 3 || nDU != 3 {
		t.Errorf("eliminators removed %d/%d/%d/%d, want 3 each", nDCE, nFCE, nSSA, nDU)
	}
}

func TestLazyCodeMotionAccessor(t *testing.T) {
	prog, err := pdce.ParseSource("p", `
i := 2
do {
    x := a * b
    i := i - 1
} while i > 0
out(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	opt, inserted, replaced, err := prog.LazyCodeMotion()
	if err != nil {
		t.Fatal(err)
	}
	if inserted == 0 || replaced == 0 {
		t.Errorf("lcm inserted=%d replaced=%d on a loop-invariant workload", inserted, replaced)
	}
	if err := prog.CheckOutputs(opt, 48); err != nil {
		t.Fatal(err)
	}
}

func TestRunAndReplay(t *testing.T) {
	prog, err := pdce.ParseSource("p", `
if * { out(1) } else { out(2) }
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := prog.Run(3, 0)
	if !tr.Terminated || len(tr.Outputs) != 1 {
		t.Fatalf("trace = %+v", tr)
	}
	replayed := prog.RunDecisions(tr.Decisions, 0)
	if replayed.Outputs[0] != tr.Outputs[0] {
		t.Error("replay diverged")
	}
}

func TestRunWithInput(t *testing.T) {
	prog, err := pdce.ParseSource("p", `out(n * n)`)
	if err != nil {
		t.Fatal(err)
	}
	tr := prog.RunWithInput(0, 0, map[string]int64{"n": 9})
	if tr.Outputs[0] != 81 {
		t.Errorf("outputs = %v", tr.Outputs)
	}
	if tr.TermEvals != 1 {
		t.Errorf("TermEvals = %d", tr.TermEvals)
	}
}

func TestFaultTrace(t *testing.T) {
	prog, err := pdce.ParseSource("p", `
z := 0
out(1 / z)
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := prog.Run(0, 0)
	if !tr.Faulted || tr.Err == nil {
		t.Errorf("trace = %+v, want fault", tr)
	}
}

func TestCheckRejectsBogusTransformation(t *testing.T) {
	a, _ := pdce.ParseSource("p", `out(1)`)
	b, _ := pdce.ParseSource("p", `out(2)`)
	if err := a.Check(b, 8); err == nil {
		t.Error("bogus transformation accepted")
	}
}

func TestGenerateAccessor(t *testing.T) {
	p := pdce.Generate(pdce.GenParams{Seed: 4, Stmts: 40, Irreducible: true})
	if p.NumStatements() == 0 {
		t.Error("generator produced empty program")
	}
	q := pdce.Generate(pdce.GenParams{Seed: 4, Stmts: 40, Irreducible: true})
	if !p.Equal(q) {
		t.Error("generator not deterministic through the facade")
	}
}

func TestRenderers(t *testing.T) {
	prog, err := pdce.ParseSource("p", `out(x)`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.DOT(), "digraph") {
		t.Error("DOT output malformed")
	}
	if !strings.Contains(prog.String(), "out(x)") {
		t.Error("String output malformed")
	}
	if !strings.Contains(prog.Format(), "edge") {
		t.Error("Format output malformed")
	}
	if prog.Name() != "p" {
		t.Errorf("Name = %q", prog.Name())
	}
	if prog.NumBlocks() < 3 {
		t.Errorf("NumBlocks = %d", prog.NumBlocks())
	}
}

func TestStatsGrowthFactor(t *testing.T) {
	var s pdce.Stats
	if s.GrowthFactor() != 1 {
		t.Error("zero stats growth != 1")
	}
	s.OriginalStmts, s.PeakStmts = 10, 15
	if s.GrowthFactor() != 1.5 {
		t.Errorf("GrowthFactor = %f", s.GrowthFactor())
	}
}

func TestPassesPipeline(t *testing.T) {
	prog, err := pdce.ParseSource("p", `
i := n
r := 0
do {
    step := a * b
    diag := r * 3
    r := r + step
    i := i - 1
} while i > 0
if * { out(diag) } else { out(r) }
`)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := prog.Passes("lcm", "copyprop", "pde")
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.CheckOutputs(opt, 64); err != nil {
		t.Fatal(err)
	}
	// The pipeline must beat each input on term evaluations for a
	// concrete heavy run.
	in := map[string]int64{"n": 200, "a": 3, "b": 4}
	before := prog.RunWithInput(1, 4096, in)
	after := opt.RunWithInput(1, 4096, in)
	if after.TermEvals >= before.TermEvals {
		t.Errorf("pipeline did not reduce term evals: %d -> %d", before.TermEvals, after.TermEvals)
	}
	if _, err := prog.Passes("pde", "explode"); err == nil {
		t.Error("unknown pass accepted")
	}
}

func TestHotOption(t *testing.T) {
	prog, err := pdce.ParseCFG(`
node 1 { y := a+b }
node 2 {}
node 3 { y := c }
node 4 {}
node 5 { out(x+y) }
edge s 1
edge 1 2
edge 2 3
edge 2 4
edge 3 5
edge 4 5
edge 5 e
`)
	if err != nil {
		t.Fatal(err)
	}
	// Only node 5 hot: the partially dead assignment in node 1 is
	// out of reach, nothing changes.
	frozen, st, err := prog.Optimize(pdce.Options{
		Mode: pdce.Dead,
		Hot:  func(label string) bool { return label == "5" },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Eliminated != 0 || !prog.Equal(frozen) {
		t.Errorf("cold program was transformed: %+v\n%s", st, frozen)
	}
	// Whole program hot: full figure-1 optimization.
	full, st2, err := prog.Optimize(pdce.Options{
		Mode: pdce.Dead,
		Hot:  func(string) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Eliminated != 1 {
		t.Errorf("all-hot run eliminated %d, want 1:\n%s", st2.Eliminated, full)
	}
}
