package pdce

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakePool builds a pool over synthetic URLs with the prober disabled —
// routing and membership are exercised without any network.
func fakePool(t *testing.T, n int) *Pool {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://replica-%d:8723", i)
	}
	p, err := NewPool(urls, PoolOptions{ProbeInterval: -1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

// Ejecting one replica must move only the keys homed on it — every
// other key keeps both its home and its routed target (the consistent-
// hashing property affinity caching depends on) — and readmission must
// restore the original assignment exactly.
func TestAffinityStabilityUnderChurn(t *testing.T) {
	p := fakePool(t, 4)
	keys := testKeys(256)

	home := make(map[string]*member, len(keys))
	routed := make(map[string]*member, len(keys))
	for _, k := range keys {
		cands := p.candidates(k)
		home[k] = cands[0]
		m, wait := p.pick(cands, 0)
		if wait != 0 {
			t.Fatalf("key %s: unexpected cooldown wait %v on a healthy ring", k, wait)
		}
		routed[k] = m
		if m != cands[0] {
			t.Fatalf("key %s: healthy ring routed to %s, want home %s", k, m.base, cands[0].base)
		}
	}

	victim := p.members[1]
	p.eject(victim)
	moved := 0
	for _, k := range keys {
		cands := p.candidates(k)
		if cands[0] != home[k] {
			t.Fatalf("key %s: home changed under churn (%s -> %s)", k, home[k].base, cands[0].base)
		}
		m, _ := p.pick(cands, 0)
		if home[k] == victim {
			moved++
			if m != cands[1] {
				t.Fatalf("key %s: expected failover to second candidate %s, got %s", k, cands[1].base, m.base)
			}
			continue
		}
		if m != routed[k] {
			t.Fatalf("key %s: routed target moved (%s -> %s) though its home %s is healthy",
				k, routed[k].base, m.base, home[k].base)
		}
	}
	if moved == 0 {
		t.Fatal("no key was homed on the ejected replica — ring is badly unbalanced")
	}

	p.readmit(victim)
	for _, k := range keys {
		if m, _ := p.pick(p.candidates(k), 0); m != routed[k] {
			t.Fatalf("key %s: readmission did not restore routing (%s, want %s)", k, m.base, routed[k].base)
		}
	}
	snap := p.Stats().Snapshot()
	if rc := snap.Replicas[victim.base]; rc.Ejections != 1 || rc.Readmissions != 1 {
		t.Fatalf("victim counters = %+v, want 1 ejection and 1 readmission", rc)
	}
}

// A 429's Retry-After must become a real cooldown: the retry against
// the shedding replica may not be scheduled earlier than the server
// asked, even when the exponential backoff alone would be shorter.
func TestRetryHonorsRetryAfter(t *testing.T) {
	const retryAfterS = 3
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterS))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(ServerError{Kind: "queue-full", Message: "server at capacity"})
	}))
	defer ts.Close()

	p, err := NewPool([]string{ts.URL}, PoolOptions{
		ProbeInterval: -1,
		Seed:          1,
		Retry:         RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var slept []time.Duration
	p.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil // observe the schedule without serving it in real time
	}

	_, _, err = p.Optimize(context.Background(), "p", "x := a\nout(x)\n", RequestOptions{})
	var se *ServerError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("want wrapped 429 ServerError, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("server saw %d calls, want 2 (one retry)", calls)
	}
	if len(slept) != 1 {
		t.Fatalf("recorded sleeps = %v, want exactly one pre-retry delay", slept)
	}
	min := time.Duration(retryAfterS)*time.Second - 500*time.Millisecond // cooldown measured from first failure
	if slept[0] < min || slept[0] > time.Duration(retryAfterS)*time.Second {
		t.Fatalf("retry delay %v does not honor Retry-After %ds", slept[0], retryAfterS)
	}
}

// Deterministic failures must not be retried: a parse error (400)
// replays identically on every replica.
func TestNoRetryOnDeterministicFailure(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(ServerError{Kind: "parse", Message: "no"})
	}))
	defer ts.Close()
	p, err := NewPool([]string{ts.URL, ts.URL + "/"}, PoolOptions{ProbeInterval: -1})
	if err == nil {
		t.Fatal("duplicate replica accepted")
	}
	p, err = NewPool([]string{ts.URL}, PoolOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	_, _, err = p.Optimize(context.Background(), "p", "x := a\nout(x)\n", RequestOptions{})
	var se *ServerError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("want 400 ServerError, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry on 400)", calls)
	}
}

// cannedResponse is a decodable OptimizeResponse body for handler
// doubles that do not run the real optimizer.
func cannedResponse(tag string) []byte {
	body, _ := json.Marshal(OptimizeResponse{Name: "p", Key: "k", Mode: "pde", Program: tag, Listing: tag})
	return body
}

// A hedged request must win against a stalled primary, and the losing
// arm must be cancelled — no goroutine may outlive the call.
func TestHedgeWinsAndLoserIsCancelled(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body as the real server does: the server's
		// disconnect detection (which feeds r.Context().Done()) only
		// starts once the request body has been consumed.
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done(): // cancelled loser: unwind immediately
			return
		case <-release:
		case <-time.After(5 * time.Second):
		}
		w.Header().Set("X-Pdced-Cache", "hit")
		w.Write(cannedResponse("slow"))
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Pdced-Cache", "hit")
		w.Write(cannedResponse("fast"))
	}))
	defer fast.Close()
	defer close(release)

	hc := &http.Client{}
	p, err := NewPool([]string{slow.URL, fast.URL}, PoolOptions{
		HTTPClient:    hc,
		ProbeInterval: -1,
		Hedge:         true,
		HedgeDelay:    10 * time.Millisecond,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Find a program whose home replica is the slow one, so the hedge
	// must fire to win.
	slowMember := p.members[0]
	source, found := "", false
	for i := 0; i < 64 && !found; i++ {
		source = fmt.Sprintf("x := a%d\nout(x)\n", i)
		found = p.candidates(p.affinityKey("p", source, RequestOptions{}))[0] == slowMember
	}
	if !found {
		t.Fatal("could not find a program homed on the slow replica")
	}

	before := runtime.NumGoroutine()
	resp, _, err := p.Optimize(context.Background(), "p", source, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Program != "fast" {
		t.Fatalf("response came from %q, want the hedged fast replica", resp.Program)
	}
	snap := p.Stats().Snapshot()
	if snap.Hedges != 1 || snap.HedgesWon != 1 {
		t.Fatalf("hedges=%d won=%d, want 1/1", snap.Hedges, snap.HedgesWon)
	}
	if snap.AffinityMisses != 1 {
		t.Fatalf("affinity misses = %d, want 1 (hedge answered off-home)", snap.AffinityMisses)
	}

	// The cancelled loser must unwind: drop keep-alive connections (they
	// are pooled transport state, not hedge goroutines), give the runtime
	// a moment, then require the count back at (or below) the baseline.
	hc.CloseIdleConnections()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines leaked by hedging: %d before, %d after\n%s", before, got, buf[:n])
	}
}

// MaxTotalRequests is a hard cap on wire requests per logical call:
// with a budget below MaxAttempts, the failover loop must stop at the
// budget — the shedding replica sees exactly that many requests.
func TestRetryBudgetCapsTotalRequests(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(ServerError{Kind: "draining", Message: "leaving"})
	}))
	defer ts.Close()

	p, err := NewPool([]string{ts.URL}, PoolOptions{
		ProbeInterval: -1,
		Seed:          1,
		Retry: RetryPolicy{
			MaxAttempts:      5,
			BaseBackoff:      time.Millisecond,
			MaxBackoff:       2 * time.Millisecond,
			MaxTotalRequests: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.sleep = func(ctx context.Context, d time.Duration) error { return nil }

	_, _, err = p.Optimize(context.Background(), "p", "x := a\nout(x)\n", RequestOptions{})
	if err == nil {
		t.Fatal("call against a permanently draining replica succeeded")
	}
	if !strings.Contains(err.Error(), "request budget (2) exhausted") {
		t.Fatalf("error %v does not name the exhausted budget", err)
	}
	if calls != 2 {
		t.Fatalf("replica saw %d requests, want exactly the budget of 2", calls)
	}
}

// Hedges draw from the same budget: when it cannot fund a second
// request, the hedge is skipped — the primary still answers, and no
// hedge is counted.
func TestRetryBudgetSkipsHedge(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		time.Sleep(30 * time.Millisecond)
		w.Header().Set("X-Pdced-Cache", "hit")
		w.Write(cannedResponse("slow"))
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Pdced-Cache", "hit")
		w.Write(cannedResponse("fast"))
	}))
	defer fast.Close()

	p, err := NewPool([]string{slow.URL, fast.URL}, PoolOptions{
		ProbeInterval: -1,
		Hedge:         true,
		HedgeDelay:    5 * time.Millisecond,
		Seed:          1,
		Retry:         RetryPolicy{MaxAttempts: 2, MaxTotalRequests: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// A program homed on the slow replica, so only the budget stands
	// between the hedge timer and a second request.
	slowMember := p.members[0]
	source, found := "", false
	for i := 0; i < 64 && !found; i++ {
		source = fmt.Sprintf("x := a%d\nout(x)\n", i)
		found = p.candidates(p.affinityKey("p", source, RequestOptions{}))[0] == slowMember
	}
	if !found {
		t.Fatal("could not find a program homed on the slow replica")
	}
	resp, _, err := p.Optimize(context.Background(), "p", source, RequestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Program != "slow" {
		t.Fatalf("response came from %q; the budget should have pinned the call to the primary", resp.Program)
	}
	if snap := p.Stats().Snapshot(); snap.Hedges != 0 {
		t.Fatalf("hedges = %d, want 0 (budget exhausted before the hedge)", snap.Hedges)
	}
}

// Probe scheduling must be jittered: delays spread within ±20% of the
// interval instead of landing on one synchronized tick.
func TestProbeDelayJitter(t *testing.T) {
	const interval = time.Hour // far beyond the test — the loop never fires
	p, err := NewPool([]string{"http://replica-0:8723"}, PoolOptions{ProbeInterval: interval, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	lo, hi := time.Duration(float64(interval)*0.8), time.Duration(float64(interval)*1.2)
	seen := make(map[time.Duration]bool)
	for i := 0; i < 32; i++ {
		d := p.probeDelay()
		if d < lo || d >= hi {
			t.Fatalf("probe delay %v outside [%v, %v)", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 2 {
		t.Fatal("probe delays never vary — the jitter is not applied")
	}
}

// A transport failure ejects the replica and fails over; concurrent
// callers under -race must each still get an answer.
func TestTransportFailureFailsOver(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/healthz") {
			json.NewEncoder(w).Encode(HealthResponse{Status: "ok"})
			return
		}
		w.Header().Set("X-Pdced-Cache", "miss")
		w.Write(cannedResponse("up"))
	}))
	defer up.Close()
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	down.Close() // immediately dead: every dial fails

	p, err := NewPool([]string{down.URL, up.URL}, PoolOptions{
		ProbeInterval: -1,
		Seed:          1,
		Retry:         RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := fmt.Sprintf("x := a%d\nout(x)\n", i)
			_, _, errs[i] = p.Optimize(context.Background(), "p", src, RequestOptions{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d saw error despite failover: %v", i, err)
		}
	}
	if down := p.Members()[0]; down.Healthy {
		t.Fatal("dead replica still marked healthy after transport failures")
	}
	if snap := p.Stats().Snapshot(); snap.Failovers == 0 {
		t.Fatal("no failovers recorded though the home replica of some key must be dead")
	}
}
