package pdce_test

import (
	"os"
	"testing"

	"pdce/internal/obs"
)

// benchSchema pins the BENCH_paper.json history shape: run headers
// (run_id, kind, repeats), raw per-repeat records, and the
// variance-aware aggregate fields. Like the telemetry schema, unknown
// keys are rejected, so the golden file and the obs.BenchRun wire shape
// can only drift together in the same change.
const benchSchema = "testdata/bench.schema.json"

// TestBenchHistorySchema validates the committed run history against
// the golden schema, then through the real loader.
func TestBenchHistorySchema(t *testing.T) {
	data, err := os.ReadFile("BENCH_paper.json")
	if err != nil {
		t.Fatal(err)
	}
	checkSchema(t, "BENCH_paper.json", data, benchSchema)

	h, err := obs.ParseBenchHistory(data)
	if err != nil {
		t.Fatal(err)
	}
	if h.Schema != obs.BenchSchemaVersion {
		t.Errorf("schema = %d, want %d", h.Schema, obs.BenchSchemaVersion)
	}
	if len(h.Runs) == 0 {
		t.Fatal("committed history has no runs")
	}
	// Every run the docs draw from must aggregate cleanly.
	for i := range h.Runs {
		run := &h.Runs[i]
		if run.RunID == "" || run.Kind == "" {
			t.Errorf("run %d: missing run_id or kind: %+v", i, run)
		}
		for _, p := range run.Records {
			if p.Exp == "" || p.Name == "" {
				t.Errorf("run %s: record without exp/name: %+v", run.RunID, p)
			}
		}
	}
	// The newest non-milestone run feeds the doc tables; it must exist
	// and carry aggregates so renders don't silently recompute.
	newest := h.Newest(nil)
	if newest == nil {
		t.Fatal("history has no non-milestone run")
	}
	if len(newest.Aggregates) == 0 {
		t.Errorf("newest run %s has no precomputed aggregates", newest.RunID)
	}
}

// TestBenchSchemaRoundTrip validates a freshly-built run against the
// same golden schema, so the schema can't go stale against the writer.
func TestBenchSchemaRoundTrip(t *testing.T) {
	points := []obs.BenchPoint{
		{Exp: "C1", Name: "pde", N: 64, Rep: 0, NSPerOp: 1000, Metrics: map[string]float64{"exponent": 1.4}},
		{Exp: "C1", Name: "pde", N: 64, Rep: 1, NSPerOp: 1100, Metrics: map[string]float64{"exponent": 1.4}},
	}
	h := &obs.BenchHistory{Schema: obs.BenchSchemaVersion, Runs: []obs.BenchRun{{
		RunID: "rt", Kind: "quick", Time: "2026-01-01T00:00:00Z", Quick: true,
		Seeds: 3, Repeats: 2, GOMAXPROCS: 1, Exps: []string{"C1"},
		Records: points, Aggregates: obs.AggregateBench(points),
	}}}
	path := t.TempDir() + "/hist.json"
	if err := obs.SaveBenchHistory(path, h); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkSchema(t, "round-trip history", data, benchSchema)
}
