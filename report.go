package pdce

import (
	"fmt"
	"strings"
	"time"

	"pdce/internal/batch"
)

// Report is the machine-readable record of one optimization run — the
// payload behind cmd/pdce's -metrics-json. Stats embeds the telemetry
// section when the run collected it.
type Report struct {
	Name string `json:"name"`
	Mode string `json:"mode"`
	// OK is false when the run returned an error; Error carries its
	// text (partial results keep their Stats alongside it).
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	Stats Stats  `json:"stats"`
	// DurationNS is the wall-clock optimization time when known
	// (batch runs stamp it; single runs may leave it 0).
	DurationNS int64 `json:"duration_ns,omitempty"`
}

// MakeReport assembles a run report.
func MakeReport(name string, mode Mode, st Stats, d time.Duration, err error) Report {
	r := Report{
		Name:       name,
		Mode:       mode.String(),
		OK:         err == nil,
		Stats:      st,
		DurationNS: int64(d),
	}
	if err != nil {
		r.Error = err.Error()
	}
	return r
}

// BatchMetrics aggregates a finished batch: failure classes, latency
// percentiles, per-worker load. See internal/batch for field docs.
type BatchMetrics = batch.Metrics

// BatchProgress is a live snapshot of a running batch.
type BatchProgress = batch.Progress

// BatchTracker publishes live progress of OptimizeAllObserved; poll
// Snapshot from another goroutine (cmd/pdce serves it over HTTP).
type BatchTracker = batch.Tracker

// BatchReport is the machine-readable record of a whole batch run.
type BatchReport struct {
	Programs []Report     `json:"programs"`
	Batch    BatchMetrics `json:"batch"`
}

// --- provenance explanation -----------------------------------------

// Explain extracts one variable's provenance chain from a traced run:
// every event whose assignment targets the variable, in stream order.
// The chain reads as the assignment's journey through the fixpoint —
// sunk out of its block, materialized at insertion frontiers, fused in
// place, and finally eliminated or dropped (a removal with no matching
// insertion means the assignment was dead on all remaining paths and
// sank off the program). Returns nil when the run was not traced or
// never touched the variable.
func Explain(t *Telemetry, variable string) []TraceEvent {
	if t == nil {
		return nil
	}
	var chain []TraceEvent
	for _, ev := range t.Events {
		if ev.Var == variable {
			chain = append(chain, ev)
		}
	}
	return chain
}

// FormatExplain renders a provenance chain as human-readable lines.
func FormatExplain(variable string, chain []TraceEvent) string {
	if len(chain) == 0 {
		return fmt.Sprintf("%s: no provenance events (assignments to it were never moved or removed)\n", variable)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "provenance of %s:\n", variable)
	for _, ev := range chain {
		fmt.Fprintf(&b, "  round %d %-9s %s", ev.Round, ev.Phase, describeEvent(ev))
		if ev.Analysis != "" {
			fmt.Fprintf(&b, "  [%s]", ev.Analysis)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func describeEvent(ev TraceEvent) string {
	switch ev.Kind {
	case EventEliminate:
		return fmt.Sprintf("eliminated %q in block %s", ev.Pattern, ev.Block)
	case EventSinkRemove:
		return fmt.Sprintf("candidate %q removed from block %s", ev.Pattern, ev.Block)
	case EventInsertEntry:
		return fmt.Sprintf("instance %q inserted at entry of block %s", ev.Pattern, ev.Block)
	case EventInsertExit:
		return fmt.Sprintf("instance %q inserted at exit of block %s", ev.Pattern, ev.Block)
	case EventFuse:
		return fmt.Sprintf("candidate %q kept in place in block %s (removal and insertion cancelled)", ev.Pattern, ev.Block)
	case EventSplitEdge:
		return fmt.Sprintf("synthetic block %s splits edge %s", ev.Block, ev.Detail)
	default:
		return fmt.Sprintf("%s %q in block %s", ev.Kind, ev.Pattern, ev.Block)
	}
}
