module pdce

go 1.22
