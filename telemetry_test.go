package pdce_test

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"pdce"
)

func mustParseFile(t *testing.T, path string) *pdce.Program {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pdce.ParseSource(path, string(src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTelemetryOptIn pins the opt-in contract: no collection without
// the option, populated solver metrics with it, for both modes and
// both drivers.
func TestTelemetryOptIn(t *testing.T) {
	p := mustParseFile(t, "testdata/corpus/stats.while")

	_, st, err := p.Optimize(pdce.Options{Mode: pdce.Dead})
	if err != nil {
		t.Fatal(err)
	}
	if st.Telemetry != nil {
		t.Fatal("telemetry collected without opting in")
	}

	for _, tc := range []struct {
		name string
		opts pdce.Options
	}{
		{"pde-incremental", pdce.Options{Mode: pdce.Dead, Telemetry: true}},
		{"pde-reference", pdce.Options{Mode: pdce.Dead, Telemetry: true, NoIncremental: true}},
		{"pfe-incremental", pdce.Options{Mode: pdce.Faint, Telemetry: true}},
		{"pfe-reference", pdce.Options{Mode: pdce.Faint, Telemetry: true, NoIncremental: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, st, err := p.Optimize(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			tel := st.Telemetry
			if tel == nil {
				t.Fatal("no telemetry despite Options.Telemetry")
			}
			if tel.Delay.Solves == 0 || tel.Delay.NodeVisits == 0 {
				t.Errorf("delay metrics empty: %+v", tel.Delay)
			}
			if tc.opts.Mode == pdce.Dead {
				if tel.Dead.Solves == 0 {
					t.Errorf("dead metrics empty: %+v", tel.Dead)
				}
				if tel.Faint.Solves != 0 {
					t.Errorf("pde run collected faint metrics: %+v", tel.Faint)
				}
			} else {
				if tel.Faint.Solves == 0 || tel.Faint.SlotUpdates == 0 {
					t.Errorf("faint metrics empty: %+v", tel.Faint)
				}
			}
			if r := tel.Delay.ReuseRate; r < 0 || r > 1 {
				t.Errorf("reuse rate %v out of [0,1]", r)
			}
			if !tc.opts.NoIncremental && tel.Arena.UsedWords == 0 {
				t.Errorf("incremental run reports no arena usage: %+v", tel.Arena)
			}
			if len(tel.Events) != 0 {
				t.Errorf("tracing off but %d events recorded", len(tel.Events))
			}
		})
	}
}

// TestTelemetryIncrementalReuse pins the headline metric: on a
// multi-round program the incremental driver's later delay solves seed
// only the affected region, so the accumulated reuse rate is positive,
// while the reference driver reports zero reuse (every solve is full).
func TestTelemetryIncrementalReuse(t *testing.T) {
	p := mustParseFile(t, "testdata/corpus/stats.while")

	_, inc, err := p.Optimize(pdce.Options{Mode: pdce.Dead, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	_, ref, err := p.Optimize(pdce.Options{Mode: pdce.Dead, Telemetry: true, NoIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if inc.Rounds < 2 {
		t.Fatalf("need a multi-round program, got %d rounds", inc.Rounds)
	}
	if r := inc.Telemetry.Delay.ReuseRate; r <= 0 {
		t.Errorf("incremental delay reuse rate = %v, want > 0", r)
	}
	if got := inc.Telemetry.Delay.IncrementalSolves; got == 0 {
		t.Error("incremental driver reports no incremental solves")
	}
	if r := ref.Telemetry.Delay.ReuseRate; r != 0 {
		t.Errorf("reference delay reuse rate = %v, want 0", r)
	}
	if got := ref.Telemetry.Delay.IncrementalSolves; got != 0 {
		t.Errorf("reference driver reports %d incremental solves", got)
	}
}

// TestProvenanceSinkThenEliminate is the acceptance walkthrough: in
// stats.while the loop's sq accumulation is needed on only one exit, so
// the fixpoint sinks it out of the loop body and then eliminates the
// copy on the branch that never uses it. The trace must record that
// journey in order.
func TestProvenanceSinkThenEliminate(t *testing.T) {
	p := mustParseFile(t, "testdata/corpus/stats.while")
	_, st, err := p.Optimize(pdce.Options{Mode: pdce.Dead, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Telemetry == nil || len(st.Telemetry.Events) == 0 {
		t.Fatal("traced run recorded no events")
	}

	// Seq numbers are dense stream order.
	for i, ev := range st.Telemetry.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}

	chain := pdce.Explain(st.Telemetry, "sq")
	if len(chain) == 0 {
		t.Fatal("no provenance for sq")
	}
	var sunk, inserted, eliminated bool
	var sinkSeq, elimSeq int
	for _, ev := range chain {
		switch ev.Kind {
		case pdce.EventSinkRemove:
			sunk, sinkSeq = true, ev.Seq
		case pdce.EventInsertEntry, pdce.EventInsertExit:
			inserted = true
		case pdce.EventEliminate:
			eliminated, elimSeq = true, ev.Seq
			if ev.Analysis != "dead" {
				t.Errorf("elimination attributed to %q, want dead", ev.Analysis)
			}
		}
	}
	if !sunk || !inserted || !eliminated {
		t.Fatalf("journey incomplete: sunk=%v inserted=%v eliminated=%v\n%s",
			sunk, inserted, eliminated, pdce.FormatExplain("sq", chain))
	}
	if elimSeq <= sinkSeq {
		t.Errorf("elimination (seq %d) precedes sinking (seq %d)", elimSeq, sinkSeq)
	}

	out := pdce.FormatExplain("sq", chain)
	for _, want := range []string{"provenance of sq", "removed from block", "eliminated"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatExplain output missing %q:\n%s", want, out)
		}
	}

	// A variable the optimizer never touched explains to the empty
	// chain with a helpful message.
	if got := pdce.Explain(st.Telemetry, "nosuchvar"); got != nil {
		t.Errorf("Explain(nosuchvar) = %v", got)
	}
	if msg := pdce.FormatExplain("nosuchvar", nil); !strings.Contains(msg, "no provenance events") {
		t.Errorf("empty-chain message = %q", msg)
	}
	if got := pdce.Explain(nil, "sq"); got != nil {
		t.Errorf("Explain(nil telemetry) = %v", got)
	}
}

// TestObserveOncePerPhase pins the Observe contract for both drivers:
// every round fires exactly one eliminate and one sink event, in that
// order, with contiguous 1-based round numbers.
func TestObserveOncePerPhase(t *testing.T) {
	p := mustParseFile(t, "testdata/corpus/stats.while")
	for _, tc := range []struct {
		name string
		ref  bool
	}{{"incremental", false}, {"reference", true}} {
		t.Run(tc.name, func(t *testing.T) {
			type key struct {
				round int
				phase string
			}
			var order []key
			seen := map[key]int{}
			_, st, err := p.Optimize(pdce.Options{
				Mode:          pdce.Dead,
				NoIncremental: tc.ref,
				Observe: func(round int, phase string, changed bool, snapshot string) {
					k := key{round, phase}
					seen[k]++
					order = append(order, k)
					if snapshot == "" {
						t.Error("empty snapshot")
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if st.Rounds == 0 {
				t.Fatal("no rounds")
			}
			if len(order) != 2*st.Rounds {
				t.Fatalf("%d events for %d rounds, want %d", len(order), st.Rounds, 2*st.Rounds)
			}
			for r := 1; r <= st.Rounds; r++ {
				e, s := key{r, "eliminate"}, key{r, "sink"}
				if seen[e] != 1 || seen[s] != 1 {
					t.Errorf("round %d: eliminate seen %d times, sink %d times", r, seen[e], seen[s])
				}
				if order[2*(r-1)] != e || order[2*(r-1)+1] != s {
					t.Errorf("round %d out of order: %v then %v", r, order[2*(r-1)], order[2*(r-1)+1])
				}
			}
		})
	}
}

// batchMarkerProgram builds a partially dead program whose every
// snapshot and trace event carries a unique marker variable, so events
// from concurrent runs can be attributed to their program.
func batchMarkerProgram(t *testing.T, i int) *pdce.Program {
	t.Helper()
	src := fmt.Sprintf(`
qq%d := a + b
if * {
    qq%d := c
}
out(qq%d + mk%d)
`, i, i, i, i)
	p, err := pdce.ParseSource(fmt.Sprintf("marker%d", i), src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestOptimizeAllObservability runs a concurrent batch with per-job
// tracing and a shared Observe callback. Per-job collectors must stay
// isolated (each telemetry stream mentions only its own variables),
// and the shared Observe stream — interleaved across programs — must
// still be complete: exactly one eliminate and one sink notification
// per round per program. Run under -race this also exercises the
// concurrency safety of the whole telemetry path.
func TestOptimizeAllObservability(t *testing.T) {
	const n = 8
	programs := make([]*pdce.Program, n)
	for i := range programs {
		programs[i] = batchMarkerProgram(t, i)
	}

	var mu sync.Mutex
	observed := map[int]int{} // program index -> events seen
	var tk pdce.BatchTracker
	results, metrics := pdce.OptimizeAllObserved(programs, pdce.Options{
		Mode:  pdce.Dead,
		Trace: true,
		Observe: func(round int, phase string, changed bool, snapshot string) {
			mu.Lock()
			defer mu.Unlock()
			for i := 0; i < n; i++ {
				if strings.Contains(snapshot, fmt.Sprintf("mk%d", i)) {
					observed[i]++
					return
				}
			}
			t.Error("snapshot attributable to no program")
		},
	}, 4, &tk)

	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("program %d: %v", i, r.Err)
		}
		tel := r.Stats.Telemetry
		if tel == nil || len(tel.Events) == 0 {
			t.Fatalf("program %d: no trace", i)
		}
		marker := fmt.Sprintf("qq%d", i)
		for _, ev := range tel.Events {
			if ev.Var != "" && ev.Var != marker {
				t.Errorf("program %d: event for foreign variable %q (collector shared across jobs?)", i, ev.Var)
			}
		}
		if got := observed[i]; got != 2*r.Stats.Rounds {
			t.Errorf("program %d: %d observe events for %d rounds", i, got, r.Stats.Rounds)
		}
		if r.Duration <= 0 || r.Worker < 0 {
			t.Errorf("program %d: duration/worker not stamped: %v/%d", i, r.Duration, r.Worker)
		}
	}

	if metrics.Jobs != n || metrics.Failed != 0 {
		t.Errorf("batch metrics = %+v", metrics)
	}
	if metrics.P95NS < metrics.P50NS || metrics.P50NS <= 0 {
		t.Errorf("latency percentiles p50=%d p95=%d", metrics.P50NS, metrics.P95NS)
	}
	p := tk.Snapshot()
	if p.Total != n || p.Done != n || p.Failed != 0 {
		t.Errorf("tracker = %+v", p)
	}
}

// TestReportJSONRoundTrip pins the -metrics-json payload: a traced
// run's Report marshals, round-trips losslessly, and matches the
// golden schema.
func TestReportJSONRoundTrip(t *testing.T) {
	p := mustParseFile(t, "testdata/corpus/stats.while")
	_, st, err := p.Optimize(pdce.Options{Mode: pdce.Dead, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := pdce.MakeReport(p.Name(), pdce.Dead, st, 0, nil)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back pdce.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != rep.Name || back.Mode != "pde" || !back.OK {
		t.Errorf("round trip header mismatch: %+v", back)
	}
	if back.Stats.Telemetry == nil ||
		len(back.Stats.Telemetry.Events) != len(st.Telemetry.Events) {
		t.Error("telemetry lost in round trip")
	}
	checkSchema(t, "report", data, reportSchema)
}
